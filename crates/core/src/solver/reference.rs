//! The original single-threaded self-augmented solver, kept verbatim
//! as an **executable specification** of Algorithm 1.
//!
//! The production engine (`solver::engine`) restructures these sweeps
//! into phase-split parallel updates; the golden parity tests
//! (`tests/solver_parity.rs`) assert that the engine reproduces this
//! implementation's objective trajectory and reconstruction to
//! <= 1e-9 on every coupling / scaling / warm-start configuration.
//! Not part of the supported API.
//!
//! This implementation *is* the Gauss–Seidel sweep-order
//! specification: it always walks updates in ascending order and
//! deliberately ignores `UpdaterConfig::sweep_order`. The red-black
//! order has no monolith to be parity-pinned against — its contract is
//! convergence (`tests/exact_convergence.rs`), not bit-equality.

use iupdater_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{CouplingMode, ScalingMode, UpdaterConfig};
use crate::solver::{SolveReport, SolverInputs, TermWeights};
use crate::Result;

/// The reference solver state and configuration.
#[derive(Debug)]
pub struct ReferenceSolver {
    inputs: SolverInputs,
    cfg: UpdaterConfig,
    g: Option<Matrix>,
    h: Option<Matrix>,
    rank: usize,
}

impl ReferenceSolver {
    /// Validates inputs and builds a solver.
    ///
    /// # Errors
    ///
    /// - [`CoreError::InvalidArgument`] for invalid config or `per`.
    /// - [`CoreError::DimensionMismatch`] for inconsistent shapes.
    pub fn new(inputs: SolverInputs, cfg: UpdaterConfig) -> Result<Self> {
        let (g, h, rank) = super::validate(&inputs, &cfg)?;
        Ok(ReferenceSolver {
            inputs,
            cfg,
            g,
            h,
            rank,
        })
    }

    /// Runs Algorithm 1 to convergence or the iteration budget.
    ///
    /// # Errors
    ///
    /// Propagates linear-solver failures (singular normal equations can
    /// only arise from degenerate inputs such as an all-zero mask row
    /// with λ = 0).
    pub fn solve(&self) -> Result<SolveReport> {
        let (m, n) = self.inputs.x_b.shape();
        let r = self.rank;

        // --- Initialisation (Algorithm 1 line 1) -----------------------
        let (mut l, mut rm) = match &self.inputs.warm_start {
            Some(x0) => {
                let svd = x0.svd()?;
                let mut l = Matrix::zeros(m, r);
                let mut rr = Matrix::zeros(n, r);
                for t in 0..r.min(svd.singular_values.len()) {
                    let s = svd.singular_values[t].sqrt();
                    for i in 0..m {
                        l[(i, t)] = svd.u[(i, t)] * s;
                    }
                    for j in 0..n {
                        rr[(j, t)] = svd.v[(j, t)] * s;
                    }
                }
                (l, rr)
            }
            None => {
                let mut rng = StdRng::seed_from_u64(self.cfg.seed);
                // Random L0; scale so L Rᵀ can reach dBm magnitudes fast.
                let scale = (self.inputs.x_b.max_abs().max(1.0) / r as f64).sqrt();
                let l = Matrix::from_fn(m, r, |_, _| (rng.gen::<f64>() * 2.0 - 1.0) * scale);
                let rm = Matrix::from_fn(n, r, |_, _| (rng.gen::<f64>() * 2.0 - 1.0) * scale);
                (l, rm)
            }
        };

        // --- Term weights (the paper's magnitude scaling) ---------------
        let weights = self.effective_weights(&l, &rm)?;

        // --- Alternating minimisation -----------------------------------
        let mut trace = Vec::with_capacity(self.cfg.max_iter + 1);
        trace.push(self.objective(&l, &rm, &weights)?);
        let mut iterations = 0;
        for _ in 0..self.cfg.max_iter {
            self.update_columns(&l, &mut rm, &weights)?;
            self.update_rows(&mut l, &rm, &weights)?;
            iterations += 1;
            let v = self.objective(&l, &rm, &weights)?;
            // invariants: allow(panic-freedom) — the initial
            // objective is pushed before the loop, so the trace is
            // never empty.
            let prev = *trace.last().expect("trace non-empty");
            trace.push(v);
            // Stop on relative stagnation (plays the role of v_th).
            if (prev - v).abs() <= self.cfg.tol * prev.abs().max(1e-12) {
                break;
            }
        }
        Ok(SolveReport {
            l,
            r: rm,
            objective_trace: trace,
            iterations,
            weights,
        })
    }

    /// Computes effective weights: `Fixed` passes the config through,
    /// `Auto` additionally balances each constraint against the data-fit
    /// magnitude at the initial point.
    fn effective_weights(&self, l: &Matrix, rm: &Matrix) -> Result<TermWeights> {
        let cfg = &self.cfg;
        let base = TermWeights {
            fit: cfg.weight_fit,
            reference: if cfg.use_constraint1 && self.inputs.p.is_some() {
                cfg.weight_ref
            } else {
                0.0
            },
            continuity: if cfg.use_constraint2 {
                cfg.weight_continuity
            } else {
                0.0
            },
            similarity: if cfg.use_constraint2 {
                cfg.weight_similarity
            } else {
                0.0
            },
        };
        if cfg.scaling == ScalingMode::Fixed {
            return Ok(base);
        }
        // Auto: express each term per element and scale to the data-fit
        // per-element magnitude at the initial point.
        let xhat = l.matmul(&rm.transpose())?;
        let fit_resid = self
            .inputs
            .b
            .hadamard(&xhat)?
            .checked_sub(&self.inputs.x_b)?;
        let known = self.inputs.b.iter().filter(|&&v| v != 0.0).count().max(1);
        let fit_mag = (fit_resid.frobenius_norm_sq() / known as f64).max(1e-9);

        let scale_for = |value: f64, count: usize| -> f64 {
            let per_elem = (value / count.max(1) as f64).max(1e-12);
            (fit_mag / per_elem).clamp(0.05, 20.0)
        };

        let mut w = base;
        if w.reference > 0.0 {
            if let Some(p) = &self.inputs.p {
                let resid = xhat.checked_sub(p)?;
                w.reference *= scale_for(resid.frobenius_norm_sq(), p.rows() * p.cols());
            }
        }
        if w.continuity > 0.0 || w.similarity > 0.0 {
            let xd = crate::decrease::extract(&xhat, self.inputs.per)?;
            if let (Some(g), w_g) = (&self.g, w.continuity) {
                if w_g > 0.0 {
                    let v = xd.matmul(g)?.frobenius_norm_sq();
                    w.continuity *= scale_for(v, xd.rows() * xd.cols());
                }
            }
            if let (Some(h), w_h) = (&self.h, w.similarity) {
                if w_h > 0.0 {
                    let v = h.matmul(&xd)?.frobenius_norm_sq();
                    w.similarity *= scale_for(v, xd.rows() * xd.cols());
                }
            }
        }
        Ok(w)
    }

    /// The full objective (Eq. 18) at `(L, R)` under `w`.
    fn objective(&self, l: &Matrix, rm: &Matrix, w: &TermWeights) -> Result<f64> {
        let xhat = l.matmul(&rm.transpose())?;
        let mut v = self.cfg.lambda * (l.frobenius_norm_sq() + rm.frobenius_norm_sq());
        let fit = self
            .inputs
            .b
            .hadamard(&xhat)?
            .checked_sub(&self.inputs.x_b)?;
        v += w.fit * fit.frobenius_norm_sq();
        if w.reference > 0.0 {
            if let Some(p) = &self.inputs.p {
                v += w.reference * xhat.checked_sub(p)?.frobenius_norm_sq();
            }
        }
        if w.continuity > 0.0 || w.similarity > 0.0 {
            let xd = crate::decrease::extract(&xhat, self.inputs.per)?;
            if let Some(g) = &self.g {
                if w.continuity > 0.0 {
                    v += w.continuity * xd.matmul(g)?.frobenius_norm_sq();
                }
            }
            if let Some(h) = &self.h {
                if w.similarity > 0.0 {
                    v += w.similarity * h.matmul(&xd)?.frobenius_norm_sq();
                }
            }
        }
        Ok(v)
    }

    /// One sweep of per-column closed-form updates of `R`
    /// (the `MyInverse(..., L̂, ...)` call of Algorithm 1 line 3).
    fn update_columns(&self, l: &Matrix, rm: &mut Matrix, w: &TermWeights) -> Result<()> {
        let (m, n) = self.inputs.x_b.shape();
        let r = self.rank;
        let per = self.inputs.per;
        // Precompute LᵀL for the reference term (Q3 of Algorithm 1).
        let ltl = if w.reference > 0.0 {
            Some(l.gram())
        } else {
            None
        };

        for j in 0..n {
            let ii = j / per;
            let jj = j % per;
            let lrow = l.row(ii);

            let mut a = Matrix::identity(r).scale(self.cfg.lambda);
            let mut rhs = vec![0.0_f64; r];

            // Data-fit term: Q2/C2 (masked rows only).
            for i in 0..m {
                if self.inputs.b[(i, j)] == 0.0 {
                    continue;
                }
                let li = l.row(i);
                let y = self.inputs.x_b[(i, j)];
                for a_idx in 0..r {
                    rhs[a_idx] += w.fit * y * li[a_idx];
                    let row = a.row_mut(a_idx);
                    for b_idx in 0..r {
                        row[b_idx] += w.fit * li[a_idx] * li[b_idx];
                    }
                }
            }

            // Constraint 1: Q3/C3.
            if let (Some(ltl), Some(p)) = (&ltl, &self.inputs.p) {
                for a_idx in 0..r {
                    let row = a.row_mut(a_idx);
                    for b_idx in 0..r {
                        row[b_idx] += w.reference * ltl[(a_idx, b_idx)];
                    }
                }
                for i in 0..m {
                    let pij = p[(i, j)];
                    if pij == 0.0 {
                        continue;
                    }
                    let li = l.row(i);
                    for a_idx in 0..r {
                        rhs[a_idx] += w.reference * pij * li[a_idx];
                    }
                }
            }

            // Constraint 2: Q4/Q5 (+C4/C5 in Exact mode).
            if let Some(g) = &self.g {
                if w.continuity > 0.0 {
                    let (q4, c4) = match self.cfg.coupling {
                        CouplingMode::PaperLiteral => {
                            // Algorithm 1 line 18: column jj of G.
                            let norm_sq: f64 = (0..per).map(|u| g[(u, jj)] * g[(u, jj)]).sum();
                            (w.continuity * norm_sq, 0.0)
                        }
                        CouplingMode::Exact => {
                            // Row jj of G (the true coefficient of
                            // X_D(ii, jj) in X_D * G) plus the cross term.
                            let norm_sq: f64 = (0..per).map(|p_| g[(jj, p_)] * g[(jj, p_)]).sum();
                            let mut cross = 0.0;
                            for p_ in 0..per {
                                let gjp = g[(jj, p_)];
                                if gjp == 0.0 {
                                    continue;
                                }
                                // c_p = Σ_{u≠jj} X_D(ii, u) G(u, p).
                                let mut c_p = 0.0;
                                for u in 0..per {
                                    if u == jj {
                                        continue;
                                    }
                                    let gup = g[(u, p_)];
                                    if gup == 0.0 {
                                        continue;
                                    }
                                    let col = ii * per + u;
                                    c_p += Matrix::dot(lrow, rm.row(col)) * gup;
                                }
                                cross += c_p * gjp;
                            }
                            (w.continuity * norm_sq, -w.continuity * cross)
                        }
                    };
                    for a_idx in 0..r {
                        rhs[a_idx] += c4 * lrow[a_idx];
                        let row = a.row_mut(a_idx);
                        for b_idx in 0..r {
                            row[b_idx] += q4 * lrow[a_idx] * lrow[b_idx];
                        }
                    }
                }
            }
            if let Some(h) = &self.h {
                if w.similarity > 0.0 {
                    // Column ii of H is the coefficient of X_D(ii, jj) in
                    // H X_D (the dimension-correct reading of Algorithm 1
                    // line 19, whose printed index is a typo).
                    let norm_sq: f64 = (0..m).map(|p_| h[(p_, ii)] * h[(p_, ii)]).sum();
                    let c5 = match self.cfg.coupling {
                        CouplingMode::PaperLiteral => 0.0,
                        CouplingMode::Exact => {
                            let mut cross = 0.0;
                            for p_ in 0..m {
                                let hpi = h[(p_, ii)];
                                if hpi == 0.0 {
                                    continue;
                                }
                                // e_p = Σ_{k≠ii} H(p, k) X_D(k, jj).
                                let mut e_p = 0.0;
                                for k in 0..m {
                                    if k == ii {
                                        continue;
                                    }
                                    let hpk = h[(p_, k)];
                                    if hpk == 0.0 {
                                        continue;
                                    }
                                    let col = k * per + jj;
                                    e_p += Matrix::dot(l.row(k), rm.row(col)) * hpk;
                                }
                                cross += e_p * hpi;
                            }
                            -w.similarity * cross
                        }
                    };
                    let q5 = w.similarity * norm_sq;
                    for a_idx in 0..r {
                        rhs[a_idx] += c5 * lrow[a_idx];
                        let row = a.row_mut(a_idx);
                        for b_idx in 0..r {
                            row[b_idx] += q5 * lrow[a_idx] * lrow[b_idx];
                        }
                    }
                }
            }

            let theta = a.solve(&rhs)?;
            rm.set_row(j, &theta);
        }
        Ok(())
    }

    /// One sweep of per-row closed-form updates of `L`
    /// (the transposed `MyInverse` call of Algorithm 1 line 4).
    fn update_rows(&self, l: &mut Matrix, rm: &Matrix, w: &TermWeights) -> Result<()> {
        let (m, n) = self.inputs.x_b.shape();
        let r = self.rank;
        let per = self.inputs.per;
        let rtr = if w.reference > 0.0 {
            Some(rm.gram())
        } else {
            None
        };

        for i in 0..m {
            let mut a = Matrix::identity(r).scale(self.cfg.lambda);
            let mut rhs = vec![0.0_f64; r];

            // Data-fit.
            for j in 0..n {
                if self.inputs.b[(i, j)] == 0.0 {
                    continue;
                }
                let tj = rm.row(j);
                let y = self.inputs.x_b[(i, j)];
                for a_idx in 0..r {
                    rhs[a_idx] += w.fit * y * tj[a_idx];
                    let row = a.row_mut(a_idx);
                    for b_idx in 0..r {
                        row[b_idx] += w.fit * tj[a_idx] * tj[b_idx];
                    }
                }
            }

            // Constraint 1.
            if let (Some(rtr), Some(p)) = (&rtr, &self.inputs.p) {
                for a_idx in 0..r {
                    let row = a.row_mut(a_idx);
                    for b_idx in 0..r {
                        row[b_idx] += w.reference * rtr[(a_idx, b_idx)];
                    }
                }
                for j in 0..n {
                    let pij = p[(i, j)];
                    if pij == 0.0 {
                        continue;
                    }
                    let tj = rm.row(j);
                    for a_idx in 0..r {
                        rhs[a_idx] += w.reference * pij * tj[a_idx];
                    }
                }
            }

            // Constraint 2a (continuity): row i of X_D is wholly owned by
            // ℓ_i, so the term is a clean quadratic: Σ_p (ℓᵀ m_p)² with
            // m_p = Σ_u G(u, p) θ_{i*per+u}. No cross terms in any mode.
            if let Some(g) = &self.g {
                if w.continuity > 0.0 {
                    for p_ in 0..per {
                        let mut m_p = vec![0.0_f64; r];
                        for u in 0..per {
                            let gup = g[(u, p_)];
                            if gup == 0.0 {
                                continue;
                            }
                            let tj = rm.row(i * per + u);
                            for a_idx in 0..r {
                                m_p[a_idx] += gup * tj[a_idx];
                            }
                        }
                        for a_idx in 0..r {
                            let row = a.row_mut(a_idx);
                            for b_idx in 0..r {
                                row[b_idx] += w.continuity * m_p[a_idx] * m_p[b_idx];
                            }
                        }
                    }
                }
            }

            // Constraint 2b (similarity): ℓ_i appears in H X_D through
            // column i of H; cross terms couple to the other links' rows.
            if let Some(h) = &self.h {
                if w.similarity > 0.0 {
                    let norm_sq: f64 = (0..m).map(|p_| h[(p_, i)] * h[(p_, i)]).sum();
                    for u in 0..per {
                        let tj = rm.row(i * per + u);
                        for a_idx in 0..r {
                            let row = a.row_mut(a_idx);
                            for b_idx in 0..r {
                                row[b_idx] += w.similarity * norm_sq * tj[a_idx] * tj[b_idx];
                            }
                        }
                    }
                    if self.cfg.coupling == CouplingMode::Exact {
                        for u in 0..per {
                            let tj = rm.row(i * per + u);
                            // Σ_p H(p, i) e_{p,u},
                            // e_{p,u} = Σ_{k≠i} H(p, k) X_D(k, u).
                            let mut cross = 0.0;
                            for p_ in 0..m {
                                let hpi = h[(p_, i)];
                                if hpi == 0.0 {
                                    continue;
                                }
                                let mut e_pu = 0.0;
                                for k in 0..m {
                                    if k == i {
                                        continue;
                                    }
                                    let hpk = h[(p_, k)];
                                    if hpk == 0.0 {
                                        continue;
                                    }
                                    e_pu += hpk * Matrix::dot(l.row(k), rm.row(k * per + u));
                                }
                                cross += hpi * e_pu;
                            }
                            for a_idx in 0..r {
                                rhs[a_idx] -= w.similarity * cross * tj[a_idx];
                            }
                        }
                    }
                }
            }

            let ell = a.solve(&rhs)?;
            l.set_row(i, &ell);
        }
        Ok(())
    }
}
