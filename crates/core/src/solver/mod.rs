//! The self-augmented RSVD solver — Algorithm 1 of the paper (Sec.
//! IV-D/E) — rebuilt as a layered engine.
//!
//! Minimises the full objective (Eq. 18):
//!
//! ```text
//!   λ(‖L‖² + ‖R‖²)                      (regularised rank surrogate)
//! + w_fit ‖B ∘ (L Rᵀ) − X_B‖²           (no-decrease data fit)
//! + w_ref ‖L Rᵀ − X_R Z‖²               (constraint 1: MIC correlation)
//! + w_g   ‖X_D G‖²                      (constraint 2a: continuity)
//! + w_h   ‖H X_D‖²                      (constraint 2b: link similarity)
//! ```
//!
//! by alternating closed-form per-column updates of `R` and per-row
//! updates of `L` (the paper's `MyInverse`).
//!
//! # Module layout
//!
//! - [`terms`] — the [`terms::PenaltyTerm`] trait and one
//!   implementation per objective term; the paper's
//!   [`CouplingMode`](crate::config::CouplingMode) variants are term
//!   configurations, not solver branches.
//! - `engine` — the generic ALS engine composing the terms, with
//!   phase-split parallel sweeps (see its module docs).
//! - [`mod@reference`] — the original single-threaded monolith, kept as an
//!   executable specification; the golden parity tests assert the
//!   engine reproduces it to ≤ 1e-9.
//!
//! [`Solver`] is the stable entry point; `crate::self_augmented`
//! remains as a re-export shim for existing callers.

mod engine;
#[doc(hidden)]
pub mod reference;
pub mod terms;

use iupdater_linalg::Matrix;

use crate::config::UpdaterConfig;
use crate::neighbors::continuity_matrix;
use crate::similarity::similarity_matrix;
use crate::{CoreError, Result};

use engine::AlsEngine;

/// Inputs to the solver, all shaped `M x N` unless noted.
#[derive(Debug, Clone)]
pub struct SolverInputs {
    /// Known no-decrease values (zeros elsewhere), Eq. (8)'s `X_B`.
    pub x_b: Matrix,
    /// Binary mask: 1 = known cell.
    pub b: Matrix,
    /// Constraint-1 target `P = X_R Z`, or `None` to disable.
    pub p: Option<Matrix>,
    /// Locations per link `N/M`.
    pub per: usize,
    /// Optional warm start for `X̂` (e.g. the stale fingerprint matrix);
    /// its rank-`r` SVD factors initialise `L`/`R` instead of the random
    /// `L0` of Algorithm 1 line 1.
    pub warm_start: Option<Matrix>,
}

/// The effective (post-scaling) weights used for each objective term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TermWeights {
    /// Data-fit weight.
    pub fit: f64,
    /// Constraint-1 weight (0 when disabled).
    pub reference: f64,
    /// Continuity weight (0 when disabled).
    pub continuity: f64,
    /// Similarity weight (0 when disabled).
    pub similarity: f64,
}

/// The outcome of a solve: factors, reconstruction and diagnostics.
#[derive(Debug, Clone)]
pub struct SolveReport {
    l: Matrix,
    r: Matrix,
    objective_trace: Vec<f64>,
    iterations: usize,
    weights: TermWeights,
}

impl SolveReport {
    /// The reconstructed fingerprint matrix `X̂ = L Rᵀ` (Algorithm 1
    /// line 10).
    pub fn reconstruction(&self) -> Matrix {
        self.l
            .matmul(&self.r.transpose())
            // invariants: allow(panic-freedom) — both factors come
            // from the same solve and share the rank dimension, so
            // the shapes always agree.
            .expect("factor shapes are internally consistent")
    }

    /// The left factor `L` (`M x r`).
    pub fn l_factor(&self) -> &Matrix {
        &self.l
    }

    /// The right factor `R` (`N x r`).
    pub fn r_factor(&self) -> &Matrix {
        &self.r
    }

    /// Objective value after each iteration.
    pub fn objective_trace(&self) -> &[f64] {
        &self.objective_trace
    }

    /// Iterations actually performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The effective term weights after auto-scaling.
    pub fn weights(&self) -> TermWeights {
        self.weights
    }
}

/// Validates `(inputs, cfg)` and derives the relationship matrices —
/// the shared construction path of the engine and the reference
/// implementation.
fn validate(
    inputs: &SolverInputs,
    cfg: &UpdaterConfig,
) -> Result<(Option<Matrix>, Option<Matrix>, usize)> {
    cfg.validate().map_err(CoreError::InvalidArgument)?;
    let (m, n) = inputs.x_b.shape();
    if m == 0 || n == 0 {
        return Err(CoreError::InvalidArgument("empty problem"));
    }
    if inputs.b.shape() != (m, n) {
        return Err(CoreError::DimensionMismatch {
            context: "Solver::new (mask)",
            expected: format!("{m}x{n}"),
            got: format!("{}x{}", inputs.b.rows(), inputs.b.cols()),
        });
    }
    if inputs.per == 0 || m * inputs.per != n {
        return Err(CoreError::DimensionMismatch {
            context: "Solver::new (per)",
            expected: format!("N = M * per = {m} * {}", inputs.per),
            got: format!("N = {n}"),
        });
    }
    if let Some(p) = &inputs.p {
        if p.shape() != (m, n) {
            return Err(CoreError::DimensionMismatch {
                context: "Solver::new (P)",
                expected: format!("{m}x{n}"),
                got: format!("{}x{}", p.rows(), p.cols()),
            });
        }
    }
    if let Some(w) = &inputs.warm_start {
        if w.shape() != (m, n) {
            return Err(CoreError::DimensionMismatch {
                context: "Solver::new (warm start)",
                expected: format!("{m}x{n}"),
                got: format!("{}x{}", w.rows(), w.cols()),
            });
        }
    }
    let rank = cfg.rank.unwrap_or(m).min(m).min(n).max(1);
    let (g, h) = if cfg.use_constraint2 {
        (
            Some(continuity_matrix(inputs.per)?),
            Some(similarity_matrix(m)?),
        )
    } else {
        (None, None)
    };
    Ok((g, h, rank))
}

/// The solver: a validated problem bound to the layered ALS engine.
#[derive(Debug)]
pub struct Solver {
    engine: AlsEngine,
}

impl Solver {
    /// Validates inputs and builds a solver.
    ///
    /// # Errors
    ///
    /// - [`CoreError::InvalidArgument`] for invalid config or `per`.
    /// - [`CoreError::DimensionMismatch`] for inconsistent shapes.
    pub fn new(inputs: SolverInputs, cfg: UpdaterConfig) -> Result<Self> {
        let (g, h, rank) = validate(&inputs, &cfg)?;
        Ok(Solver {
            engine: AlsEngine::new(inputs, cfg, g, h, rank),
        })
    }

    /// Runs Algorithm 1 to convergence or the iteration budget.
    ///
    /// # Errors
    ///
    /// Propagates linear-solver failures (singular normal equations can
    /// only arise from degenerate inputs such as an all-zero mask row
    /// with λ = 0).
    pub fn solve(&self) -> Result<SolveReport> {
        self.engine.solve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CouplingMode, ScalingMode};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// A synthetic "fingerprint" with the right structural shape:
    /// smooth per-link dip profiles, similar adjacent links.
    fn structured_fingerprint(m: usize, per: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<f64> = (0..m)
            .map(|_| -62.0 + (rng.gen::<f64>() - 0.5) * 4.0)
            .collect();
        Matrix::from_fn(m, m * per, |i, j| {
            let owner = j / per;
            let u = j % per;
            if owner == i {
                // Dip profile: deep near the ends, shallow at the middle.
                let x = u as f64 / (per - 1) as f64;
                let dip = 4.0 + 5.0 * (2.0 * x - 1.0).powi(2);
                base[i] - dip
            } else if owner.abs_diff(i) == 1 {
                base[i] - 1.0
            } else {
                base[i]
            }
        })
    }

    fn mask_no_decrease(m: usize, per: usize) -> Matrix {
        Matrix::from_fn(m, m * per, |i, j| {
            let owner = j / per;
            if owner.abs_diff(i) <= 1 {
                0.0
            } else {
                1.0
            }
        })
    }

    fn default_cfg() -> UpdaterConfig {
        UpdaterConfig {
            rank: Some(6),
            max_iter: 40,
            ..UpdaterConfig::default()
        }
    }

    #[test]
    fn shapes_validated() {
        let x_b = Matrix::zeros(4, 12);
        let b = Matrix::zeros(4, 12);
        let ok = SolverInputs {
            x_b: x_b.clone(),
            b: b.clone(),
            p: None,
            per: 3,
            warm_start: None,
        };
        assert!(Solver::new(ok, default_cfg()).is_ok());
        let bad_per = SolverInputs {
            x_b: x_b.clone(),
            b: b.clone(),
            p: None,
            per: 5,
            warm_start: None,
        };
        assert!(Solver::new(bad_per, default_cfg()).is_err());
        let bad_mask = SolverInputs {
            x_b: x_b.clone(),
            b: Matrix::zeros(4, 11),
            p: None,
            per: 3,
            warm_start: None,
        };
        assert!(Solver::new(bad_mask, default_cfg()).is_err());
        let bad_p = SolverInputs {
            x_b,
            b,
            p: Some(Matrix::zeros(3, 12)),
            per: 3,
            warm_start: None,
        };
        assert!(Solver::new(bad_p, default_cfg()).is_err());
    }

    #[test]
    fn exact_mode_objective_never_increases() {
        let x = structured_fingerprint(6, 8, 1);
        let b = mask_no_decrease(6, 8);
        let x_b = b.hadamard(&x).unwrap();
        let inputs = SolverInputs {
            x_b,
            b,
            p: Some(x.clone()),
            per: 8,
            warm_start: None,
        };
        let cfg = UpdaterConfig {
            rank: Some(6),
            max_iter: 25,
            scaling: ScalingMode::Fixed,
            coupling: CouplingMode::Exact,
            ..UpdaterConfig::default()
        };
        let report = Solver::new(inputs, cfg).unwrap().solve().unwrap();
        let tr = report.objective_trace();
        for w in tr.windows(2) {
            assert!(
                w[1] <= w[0] * (1.0 + 1e-8),
                "objective increased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn constraint1_pins_down_reconstruction() {
        // With a perfect P = X, the reconstruction must approach X even
        // on unknown cells (constraint 2 off: its smoothing bias is
        // tested separately).
        let x = structured_fingerprint(6, 8, 2);
        let b = mask_no_decrease(6, 8);
        let x_b = b.hadamard(&x).unwrap();
        let inputs = SolverInputs {
            x_b,
            b: b.clone(),
            p: Some(x.clone()),
            per: 8,
            warm_start: None,
        };
        let cfg = UpdaterConfig {
            use_constraint2: false,
            ..default_cfg()
        };
        let report = Solver::new(inputs, cfg).unwrap().solve().unwrap();
        let xhat = report.reconstruction();
        let mut worst: f64 = 0.0;
        for i in 0..6 {
            for j in 0..48 {
                worst = worst.max((xhat[(i, j)] - x[(i, j)]).abs());
            }
        }
        assert!(
            worst < 1.5,
            "worst-cell error {worst} dB with perfect constraint 1"
        );
    }

    #[test]
    fn constraint2_suppresses_outliers() {
        // Truth whose largely-decrease structure satisfies constraint 2
        // exactly (identical links, flat dip => X_D G = 0 and H X_D = 0),
        // with heavy noise injected into P's large-decrease cells: the
        // constraint should then strictly reduce the error (pure noise
        // suppression, zero bias).
        let (m, per) = (6usize, 8usize);
        let x = Matrix::from_fn(m, m * per, |i, j| {
            let owner = j / per;
            if owner == i {
                -68.0
            } else {
                -62.0
            }
        });
        let b = mask_no_decrease(m, per);
        let x_b = b.hadamard(&x).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let mut p_noisy = x.clone();
        for i in 0..m {
            for u in 0..per {
                let j = i * per + u;
                if u % 2 == 0 {
                    p_noisy[(i, j)] += (rng.gen::<f64>() - 0.5) * 12.0;
                }
            }
        }
        let err_with = |use_c2: bool| {
            let cfg = UpdaterConfig {
                rank: Some(6),
                max_iter: 40,
                use_constraint2: use_c2,
                weight_continuity: 0.5,
                weight_similarity: 0.2,
                ..UpdaterConfig::default()
            };
            let inputs = SolverInputs {
                x_b: x_b.clone(),
                b: b.clone(),
                p: Some(p_noisy.clone()),
                per: 8,
                warm_start: None,
            };
            let xhat = Solver::new(inputs, cfg)
                .unwrap()
                .solve()
                .unwrap()
                .reconstruction();
            let mut err = 0.0;
            for i in 0..6 {
                for u in 0..8 {
                    let j = i * 8 + u;
                    err += (xhat[(i, j)] - x[(i, j)]).abs();
                }
            }
            err / 48.0
        };
        let with_c2 = err_with(true);
        let without = err_with(false);
        assert!(
            with_c2 < without,
            "constraint 2 should reduce large-decrease error: {with_c2} vs {without}"
        );
    }

    #[test]
    fn warm_start_reproduces_truth_quickly() {
        let x = structured_fingerprint(8, 12, 4);
        let b = mask_no_decrease(8, 12);
        let x_b = b.hadamard(&x).unwrap();
        let inputs = SolverInputs {
            x_b,
            b,
            p: Some(x.clone()),
            per: 12,
            warm_start: Some(x.clone()),
        };
        let cfg = UpdaterConfig {
            rank: Some(8),
            max_iter: 10,
            ..UpdaterConfig::default()
        };
        let report = Solver::new(inputs, cfg).unwrap().solve().unwrap();
        let xhat = report.reconstruction();
        let rel = (&xhat - &x).frobenius_norm() / x.frobenius_norm();
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn paper_literal_mode_still_converges() {
        let x = structured_fingerprint(6, 8, 5);
        let b = mask_no_decrease(6, 8);
        let x_b = b.hadamard(&x).unwrap();
        let inputs = SolverInputs {
            x_b,
            b,
            p: Some(x.clone()),
            per: 8,
            warm_start: None,
        };
        let cfg = UpdaterConfig {
            rank: Some(6),
            coupling: CouplingMode::PaperLiteral,
            max_iter: 40,
            ..UpdaterConfig::default()
        };
        let report = Solver::new(inputs, cfg).unwrap().solve().unwrap();
        let xhat = report.reconstruction();
        let rel = (&xhat - &x).frobenius_norm() / x.frobenius_norm();
        assert!(rel < 0.1, "paper-literal relative error {rel}");
    }

    #[test]
    fn deterministic_given_seed() {
        let x = structured_fingerprint(4, 6, 6);
        let b = mask_no_decrease(4, 6);
        let x_b = b.hadamard(&x).unwrap();
        let mk = || SolverInputs {
            x_b: x_b.clone(),
            b: b.clone(),
            p: Some(x.clone()),
            per: 6,
            warm_start: None,
        };
        let cfg = UpdaterConfig {
            rank: Some(4),
            max_iter: 15,
            ..UpdaterConfig::default()
        };
        let a = Solver::new(mk(), cfg.clone()).unwrap().solve().unwrap();
        let b2 = Solver::new(mk(), cfg).unwrap().solve().unwrap();
        assert!(a.reconstruction().approx_eq(&b2.reconstruction(), 1e-12));
    }

    #[test]
    fn report_accessors() {
        let x = structured_fingerprint(4, 6, 8);
        let b = mask_no_decrease(4, 6);
        let x_b = b.hadamard(&x).unwrap();
        let inputs = SolverInputs {
            x_b,
            b,
            p: Some(x),
            per: 6,
            warm_start: None,
        };
        let cfg = UpdaterConfig {
            rank: Some(3),
            max_iter: 5,
            ..UpdaterConfig::default()
        };
        let report = Solver::new(inputs, cfg).unwrap().solve().unwrap();
        assert_eq!(report.l_factor().shape(), (4, 3));
        assert_eq!(report.r_factor().shape(), (24, 3));
        assert!(report.iterations() >= 1 && report.iterations() <= 5);
        assert!(report.weights().fit > 0.0);
        assert_eq!(report.objective_trace().len(), report.iterations() + 1);
    }
}
