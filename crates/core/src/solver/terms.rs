//! Pluggable penalty terms of the self-augmented objective (Eq. 18).
//!
//! Each additive term of the objective is a [`PenaltyTerm`]: it knows
//! how to evaluate itself and how to contribute to the per-column /
//! per-row normal equations the ALS engine solves (`MyInverse` in
//! Algorithm 1). The engine composes an ordered list of terms, so the
//! paper's constraints are configuration, not control flow:
//!
//! - [`DataFitTerm`] — `w_fit ‖B ∘ (L Rᵀ) − X_B‖²` (Eq. 8),
//! - [`ReferenceTerm`] — `w_ref ‖L Rᵀ − X_R Z‖²` (constraint 1),
//! - [`ContinuityTerm`] — `w_g ‖X_D G‖²` (constraint 2a),
//! - [`SimilarityTerm`] — `w_h ‖H X_D‖²` (constraint 2b).
//!
//! A term's contribution to a column update of `R` splits into a part
//! that only depends on `L` (the quadratic coefficients and the fixed
//! linear terms — [`PenaltyTerm::assemble_column`]) and, for
//! [`CouplingMode::Exact`], a linear *cross* part that reads the
//! current `R` ([`PenaltyTerm::column_cross`]). The engine exploits
//! the split: the `R`-independent systems are assembled and factored
//! in parallel, while the Gauss–Seidel cross terms run in the original
//! sequential order — so parallel solves are bit-identical to the
//! historical monolith (see `solver::reference`).

use iupdater_linalg::{axpy_slice, Matrix};

use crate::config::CouplingMode;
use crate::Result;

/// Borrowed problem data shared by every term.
#[derive(Debug, Clone, Copy)]
pub struct TermContext<'a> {
    /// Known no-decrease values (zeros elsewhere), Eq. (8)'s `X_B`.
    pub x_b: &'a Matrix,
    /// Binary mask: 1 = known cell.
    pub b: &'a Matrix,
    /// Constraint-1 target `P = X_R Z` (when constraint 1 is active).
    pub p: Option<&'a Matrix>,
    /// Locations per link `N/M`.
    pub per: usize,
    /// Continuity relationship matrix `G` (when constraint 2 is active).
    pub g: Option<&'a Matrix>,
    /// Similarity relationship matrix `H` (when constraint 2 is active).
    pub h: Option<&'a Matrix>,
}

/// Per-sweep shared precomputation (currently the Gram matrix `FᵀF` of
/// the fixed factor, requested via [`PenaltyTerm::wants_gram`]).
#[derive(Debug, Default)]
pub struct SweepCache {
    /// `LᵀL` during column sweeps, `RᵀR` during row sweeps.
    pub gram: Option<Matrix>,
}

/// One additive penalty of the solver objective.
///
/// Implementations must keep three contracts:
///
/// 1. `assemble_*` may depend on the *fixed* factor of the sweep only
///    (`L` for columns, `R` for rows) — never on the factor being
///    updated. Everything that reads the updated factor goes into the
///    `*_cross` hook and must be flagged by `has_*_cross`.
/// 2. Contributions add into `a` / `rhs`; they never overwrite.
/// 3. Implementations are `Send + Sync` so sweeps can fan out.
pub trait PenaltyTerm: Send + Sync {
    /// Short identifier used in diagnostics.
    fn name(&self) -> &'static str;

    /// Effective (post-scaling) weight of the term.
    fn weight(&self) -> f64;

    /// Whether the term contributes at all.
    fn active(&self) -> bool {
        self.weight() > 0.0
    }

    /// Whether the engine should provide [`SweepCache::gram`].
    fn wants_gram(&self) -> bool {
        false
    }

    /// The term's value at `(L, R)`; `xhat` is the precomputed `L Rᵀ`.
    fn objective(&self, ctx: &TermContext<'_>, xhat: &Matrix) -> Result<f64>;

    /// Adds the `R`-independent part of the term's contribution to the
    /// normal equations of column `j` (`a θ = rhs`, both `r x r` / `r`).
    fn assemble_column(
        &self,
        ctx: &TermContext<'_>,
        j: usize,
        l: &Matrix,
        sweep: &SweepCache,
        a: &mut Matrix,
        rhs: &mut [f64],
    ) -> Result<()>;

    /// Whether [`PenaltyTerm::column_cross`] contributes.
    fn has_column_cross(&self) -> bool {
        false
    }

    /// Adds the `R`-dependent linear cross contribution for column `j`
    /// (Gauss–Seidel: reads the current, partially updated `R`).
    fn column_cross(
        &self,
        _ctx: &TermContext<'_>,
        _j: usize,
        _l: &Matrix,
        _rm: &Matrix,
        _rhs: &mut [f64],
    ) {
    }

    /// Adds the `L`-independent part of the term's contribution to the
    /// normal equations of row `i`.
    fn assemble_row(
        &self,
        ctx: &TermContext<'_>,
        i: usize,
        rm: &Matrix,
        sweep: &SweepCache,
        a: &mut Matrix,
        rhs: &mut [f64],
    ) -> Result<()>;

    /// Whether [`PenaltyTerm::row_cross`] contributes.
    fn has_row_cross(&self) -> bool {
        false
    }

    /// Adds the `L`-dependent linear cross contribution for row `i`.
    fn row_cross(
        &self,
        _ctx: &TermContext<'_>,
        _i: usize,
        _l: &Matrix,
        _rm: &Matrix,
        _rhs: &mut [f64],
    ) {
    }
}

/// The masked data-fit term `w ‖B ∘ (L Rᵀ) − X_B‖²` (Q2/C2).
#[derive(Debug, Clone, Copy)]
pub struct DataFitTerm {
    /// Effective weight.
    pub weight: f64,
}

impl PenaltyTerm for DataFitTerm {
    fn name(&self) -> &'static str {
        "data-fit"
    }

    fn weight(&self) -> f64 {
        self.weight
    }

    fn objective(&self, ctx: &TermContext<'_>, xhat: &Matrix) -> Result<f64> {
        // Row-major elementwise pass: same accumulation order as
        // `hadamard` + `checked_sub` + `frobenius_norm_sq`, no allocs.
        let mut sum = 0.0;
        for ((&bv, &xv), &tv) in ctx
            .b
            .as_slice()
            .iter()
            .zip(xhat.as_slice())
            .zip(ctx.x_b.as_slice())
        {
            let d = bv * xv - tv;
            sum += d * d;
        }
        Ok(self.weight * sum)
    }

    fn assemble_column(
        &self,
        ctx: &TermContext<'_>,
        j: usize,
        l: &Matrix,
        _sweep: &SweepCache,
        a: &mut Matrix,
        rhs: &mut [f64],
    ) -> Result<()> {
        for i in 0..ctx.b.rows() {
            if ctx.b[(i, j)] == 0.0 {
                continue;
            }
            let li = l.row(i);
            let y = ctx.x_b[(i, j)];
            axpy_slice(self.weight * y, li, rhs);
            a.add_outer(self.weight, li);
        }
        Ok(())
    }

    fn assemble_row(
        &self,
        ctx: &TermContext<'_>,
        i: usize,
        rm: &Matrix,
        _sweep: &SweepCache,
        a: &mut Matrix,
        rhs: &mut [f64],
    ) -> Result<()> {
        for j in 0..ctx.b.cols() {
            if ctx.b[(i, j)] == 0.0 {
                continue;
            }
            let tj = rm.row(j);
            let y = ctx.x_b[(i, j)];
            axpy_slice(self.weight * y, tj, rhs);
            a.add_outer(self.weight, tj);
        }
        Ok(())
    }
}

/// Constraint 1: `w ‖L Rᵀ − P‖²` with `P = X_R Z` (Q3/C3).
#[derive(Debug, Clone, Copy)]
pub struct ReferenceTerm {
    /// Effective weight.
    pub weight: f64,
}

impl PenaltyTerm for ReferenceTerm {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn weight(&self) -> f64 {
        self.weight
    }

    fn wants_gram(&self) -> bool {
        true
    }

    fn objective(&self, ctx: &TermContext<'_>, xhat: &Matrix) -> Result<f64> {
        let Some(p) = ctx.p else { return Ok(0.0) };
        let mut sum = 0.0;
        for (&xv, &pv) in xhat.as_slice().iter().zip(p.as_slice()) {
            let d = xv - pv;
            sum += d * d;
        }
        Ok(self.weight * sum)
    }

    fn assemble_column(
        &self,
        ctx: &TermContext<'_>,
        j: usize,
        l: &Matrix,
        sweep: &SweepCache,
        a: &mut Matrix,
        rhs: &mut [f64],
    ) -> Result<()> {
        let Some(p) = ctx.p else { return Ok(()) };
        let gram = sweep
            .gram
            .as_ref()
            // invariants: allow(panic-freedom) — the engine builds
            // the sweep Gram whenever a reference term is active;
            // TermContext::p is Some only in that configuration.
            .expect("reference term requires the sweep Gram");
        a.axpy(self.weight, gram)?;
        for i in 0..l.rows() {
            let pij = p[(i, j)];
            if pij == 0.0 {
                continue;
            }
            axpy_slice(self.weight * pij, l.row(i), rhs);
        }
        Ok(())
    }

    fn assemble_row(
        &self,
        ctx: &TermContext<'_>,
        i: usize,
        rm: &Matrix,
        sweep: &SweepCache,
        a: &mut Matrix,
        rhs: &mut [f64],
    ) -> Result<()> {
        let Some(p) = ctx.p else { return Ok(()) };
        let gram = sweep
            .gram
            .as_ref()
            // invariants: allow(panic-freedom) — the engine builds
            // the sweep Gram whenever a reference term is active;
            // TermContext::p is Some only in that configuration.
            .expect("reference term requires the sweep Gram");
        a.axpy(self.weight, gram)?;
        for j in 0..rm.rows() {
            let pij = p[(i, j)];
            if pij == 0.0 {
                continue;
            }
            axpy_slice(self.weight * pij, rm.row(j), rhs);
        }
        Ok(())
    }
}

/// Constraint 2a: neighbouring-location continuity `w ‖X_D G‖²`
/// (Q4/C4). [`CouplingMode`] is a *term configuration* here: it picks
/// the quadratic coefficient (paper-literal column of `G` vs the exact
/// row) and whether the cross term contributes.
#[derive(Debug, Clone, Copy)]
pub struct ContinuityTerm {
    /// Effective weight.
    pub weight: f64,
    /// Cross-term handling.
    pub coupling: CouplingMode,
}

impl PenaltyTerm for ContinuityTerm {
    fn name(&self) -> &'static str {
        "continuity"
    }

    fn weight(&self) -> f64 {
        self.weight
    }

    fn objective(&self, ctx: &TermContext<'_>, xhat: &Matrix) -> Result<f64> {
        let Some(g) = ctx.g else { return Ok(0.0) };
        let xd = crate::decrease::extract(xhat, ctx.per)?;
        Ok(self.weight * xd.matmul(g)?.frobenius_norm_sq())
    }

    fn assemble_column(
        &self,
        ctx: &TermContext<'_>,
        j: usize,
        l: &Matrix,
        _sweep: &SweepCache,
        a: &mut Matrix,
        _rhs: &mut [f64],
    ) -> Result<()> {
        let Some(g) = ctx.g else { return Ok(()) };
        let per = ctx.per;
        let (ii, jj) = (j / per, j % per);
        let norm_sq: f64 = match self.coupling {
            // Algorithm 1 line 18: column jj of G.
            CouplingMode::PaperLiteral => (0..per).map(|u| g[(u, jj)] * g[(u, jj)]).sum(),
            // Row jj of G: the true coefficient of X_D(ii, jj) in X_D G.
            CouplingMode::Exact => (0..per).map(|p_| g[(jj, p_)] * g[(jj, p_)]).sum(),
        };
        a.add_outer(self.weight * norm_sq, l.row(ii));
        Ok(())
    }

    fn has_column_cross(&self) -> bool {
        self.coupling == CouplingMode::Exact
    }

    fn column_cross(
        &self,
        ctx: &TermContext<'_>,
        j: usize,
        l: &Matrix,
        rm: &Matrix,
        rhs: &mut [f64],
    ) {
        let Some(g) = ctx.g else { return };
        let per = ctx.per;
        let (ii, jj) = (j / per, j % per);
        let lrow = l.row(ii);
        // Current X_D(ii, u) values of this link's row, computed once
        // (the monolith recomputed each dot product per (p, u) pair).
        let xd_row: Vec<f64> = (0..per)
            .map(|u| {
                if u == jj {
                    0.0
                } else {
                    Matrix::dot(lrow, rm.row(ii * per + u))
                }
            })
            .collect();
        let mut cross = 0.0;
        for p_ in 0..per {
            let gjp = g[(jj, p_)];
            if gjp == 0.0 {
                continue;
            }
            // c_p = Σ_{u≠jj} X_D(ii, u) G(u, p).
            let mut c_p = 0.0;
            for (u, &xdu) in xd_row.iter().enumerate() {
                if u == jj {
                    continue;
                }
                let gup = g[(u, p_)];
                if gup == 0.0 {
                    continue;
                }
                c_p += xdu * gup;
            }
            cross += c_p * gjp;
        }
        axpy_slice(-self.weight * cross, lrow, rhs);
    }

    fn assemble_row(
        &self,
        ctx: &TermContext<'_>,
        i: usize,
        rm: &Matrix,
        _sweep: &SweepCache,
        a: &mut Matrix,
        _rhs: &mut [f64],
    ) -> Result<()> {
        // Row i of X_D is wholly owned by ℓ_i, so the term is a clean
        // quadratic Σ_p (ℓᵀ m_p)² with m_p = Σ_u G(u, p) θ_{i*per+u}:
        // no cross terms in any mode.
        let Some(g) = ctx.g else { return Ok(()) };
        let per = ctx.per;
        let r = rhs_len(a);
        let mut m_p = vec![0.0_f64; r];
        for p_ in 0..per {
            m_p.fill(0.0);
            for u in 0..per {
                let gup = g[(u, p_)];
                if gup == 0.0 {
                    continue;
                }
                axpy_slice(gup, rm.row(i * per + u), &mut m_p);
            }
            a.add_outer(self.weight, &m_p);
        }
        Ok(())
    }
}

/// Constraint 2b: adjacent-link similarity `w ‖H X_D‖²` (Q5/C5).
#[derive(Debug, Clone, Copy)]
pub struct SimilarityTerm {
    /// Effective weight.
    pub weight: f64,
    /// Cross-term handling.
    pub coupling: CouplingMode,
}

impl PenaltyTerm for SimilarityTerm {
    fn name(&self) -> &'static str {
        "similarity"
    }

    fn weight(&self) -> f64 {
        self.weight
    }

    fn objective(&self, ctx: &TermContext<'_>, xhat: &Matrix) -> Result<f64> {
        let Some(h) = ctx.h else { return Ok(0.0) };
        let xd = crate::decrease::extract(xhat, ctx.per)?;
        Ok(self.weight * h.matmul(&xd)?.frobenius_norm_sq())
    }

    fn assemble_column(
        &self,
        ctx: &TermContext<'_>,
        j: usize,
        l: &Matrix,
        _sweep: &SweepCache,
        a: &mut Matrix,
        _rhs: &mut [f64],
    ) -> Result<()> {
        let Some(h) = ctx.h else { return Ok(()) };
        let ii = j / ctx.per;
        // Column ii of H is the coefficient of X_D(ii, jj) in H X_D
        // (the dimension-correct reading of Algorithm 1 line 19, whose
        // printed index is a typo).
        let m = h.rows();
        let norm_sq: f64 = (0..m).map(|p_| h[(p_, ii)] * h[(p_, ii)]).sum();
        a.add_outer(self.weight * norm_sq, l.row(ii));
        Ok(())
    }

    fn has_column_cross(&self) -> bool {
        self.coupling == CouplingMode::Exact
    }

    fn column_cross(
        &self,
        ctx: &TermContext<'_>,
        j: usize,
        l: &Matrix,
        rm: &Matrix,
        rhs: &mut [f64],
    ) {
        let Some(h) = ctx.h else { return };
        let per = ctx.per;
        let (ii, jj) = (j / per, j % per);
        let lrow = l.row(ii);
        let m = h.rows();
        // Current X_D(k, jj) for every other link, computed once.
        let xd_col: Vec<f64> = (0..m)
            .map(|k| {
                if k == ii {
                    0.0
                } else {
                    Matrix::dot(l.row(k), rm.row(k * per + jj))
                }
            })
            .collect();
        let mut cross = 0.0;
        for p_ in 0..m {
            let hpi = h[(p_, ii)];
            if hpi == 0.0 {
                continue;
            }
            // e_p = Σ_{k≠ii} H(p, k) X_D(k, jj).
            let mut e_p = 0.0;
            for (k, &xdk) in xd_col.iter().enumerate() {
                if k == ii {
                    continue;
                }
                let hpk = h[(p_, k)];
                if hpk == 0.0 {
                    continue;
                }
                e_p += xdk * hpk;
            }
            cross += e_p * hpi;
        }
        axpy_slice(-self.weight * cross, lrow, rhs);
    }

    fn assemble_row(
        &self,
        ctx: &TermContext<'_>,
        i: usize,
        rm: &Matrix,
        _sweep: &SweepCache,
        a: &mut Matrix,
        _rhs: &mut [f64],
    ) -> Result<()> {
        let Some(h) = ctx.h else { return Ok(()) };
        let per = ctx.per;
        let m = h.rows();
        let norm_sq: f64 = (0..m).map(|p_| h[(p_, i)] * h[(p_, i)]).sum();
        for u in 0..per {
            a.add_outer(self.weight * norm_sq, rm.row(i * per + u));
        }
        Ok(())
    }

    fn has_row_cross(&self) -> bool {
        self.coupling == CouplingMode::Exact
    }

    fn row_cross(&self, ctx: &TermContext<'_>, i: usize, l: &Matrix, rm: &Matrix, rhs: &mut [f64]) {
        let Some(h) = ctx.h else { return };
        let per = ctx.per;
        let m = h.rows();
        for u in 0..per {
            let tj = rm.row(i * per + u);
            // Current X_D(k, u) for every other link, computed once per u.
            let xd_col: Vec<f64> = (0..m)
                .map(|k| {
                    if k == i {
                        0.0
                    } else {
                        Matrix::dot(l.row(k), rm.row(k * per + u))
                    }
                })
                .collect();
            // Σ_p H(p, i) e_{p,u},  e_{p,u} = Σ_{k≠i} H(p, k) X_D(k, u).
            let mut cross = 0.0;
            for p_ in 0..m {
                let hpi = h[(p_, i)];
                if hpi == 0.0 {
                    continue;
                }
                let mut e_pu = 0.0;
                for (k, &xdk) in xd_col.iter().enumerate() {
                    if k == i {
                        continue;
                    }
                    let hpk = h[(p_, k)];
                    if hpk == 0.0 {
                        continue;
                    }
                    e_pu += hpk * xdk;
                }
                cross += hpi * e_pu;
            }
            axpy_slice(-self.weight * cross, tj, rhs);
        }
    }
}

/// Rank of the normal-equation system being assembled.
fn rhs_len(a: &Matrix) -> usize {
    a.rows()
}
