//! The fingerprint matrix (Def. 1): `x_ij` is the RSS of link `i` when a
//! target stands at grid location `j`, together with the deployment
//! metadata the constraints need (which link each location belongs to).

use iupdater_linalg::Matrix;
use iupdater_rfsim::target::ObstructionEffect;
use iupdater_rfsim::Testbed;

use crate::{CoreError, Result};

/// A fingerprint database organised as an `M x N` matrix (Def. 1) plus
/// the grid geometry (`M` links, `N/M` locations per link).
#[derive(Debug, Clone, PartialEq)]
pub struct FingerprintMatrix {
    data: Matrix,
    locations_per_link: usize,
}

impl FingerprintMatrix {
    /// Wraps an existing matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the column count is
    /// not `rows * locations_per_link` and
    /// [`CoreError::InvalidArgument`] for empty input.
    pub fn new(data: Matrix, locations_per_link: usize) -> Result<Self> {
        if data.is_empty() {
            return Err(CoreError::InvalidArgument("fingerprint matrix is empty"));
        }
        if locations_per_link == 0 {
            return Err(CoreError::InvalidArgument(
                "locations_per_link must be >= 1",
            ));
        }
        if data.cols() != data.rows() * locations_per_link {
            return Err(CoreError::DimensionMismatch {
                context: "FingerprintMatrix::new",
                expected: format!(
                    "{} columns (= links x per-link)",
                    data.rows() * locations_per_link
                ),
                got: format!("{} columns", data.cols()),
            });
        }
        Ok(FingerprintMatrix {
            data,
            locations_per_link,
        })
    }

    /// Runs a full manual site survey on the simulated testbed at day
    /// offset `day`, averaging `samples` readings per cell — the paper's
    /// ground-truth collection procedure.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn survey(testbed: &Testbed, day: f64, samples: usize) -> Self {
        let data = testbed.fingerprint_matrix(day, samples);
        FingerprintMatrix {
            data,
            locations_per_link: testbed.deployment().locations_per_link(),
        }
    }

    /// Collects only the *no-decrease* cells (measurable without a target
    /// present, Fig. 4's blank cells), leaving every other cell at 0 —
    /// the `X_B` input of Eq. (8). Pair with
    /// [`crate::classify::index_matrix`] for the mask `B`.
    ///
    /// Faithful to the paper's procedure, these readings are taken with
    /// the room *empty*: one averaged measurement per link, reused for
    /// every no-decrease cell on that link (a target far outside the
    /// first Fresnel zone changes the reading only marginally).
    pub fn survey_no_decrease(testbed: &Testbed, day: f64, samples: usize) -> Matrix {
        let m = testbed.deployment().num_links();
        let n = testbed.deployment().num_locations();
        let empty: Vec<f64> = (0..m)
            .map(|i| testbed.measure_empty(i, day, samples))
            .collect();
        Matrix::from_fn(m, n, |i, j| {
            if testbed.obstruction_effect(i, j) == ObstructionEffect::NoDecrease {
                empty[i]
            } else {
                0.0
            }
        })
    }

    /// The noiseless expected fingerprint matrix at `day` — the
    /// reconstruction ground truth used by the evaluation.
    pub fn expected(testbed: &Testbed, day: f64) -> Self {
        FingerprintMatrix {
            data: testbed.expected_fingerprint_matrix(day),
            locations_per_link: testbed.deployment().locations_per_link(),
        }
    }

    /// Number of links `M`.
    pub fn num_links(&self) -> usize {
        self.data.rows()
    }

    /// Number of grid locations `N`.
    pub fn num_locations(&self) -> usize {
        self.data.cols()
    }

    /// Locations per link `N/M`.
    pub fn locations_per_link(&self) -> usize {
        self.locations_per_link
    }

    /// The link index of grid location `j`.
    pub fn link_of_location(&self, j: usize) -> usize {
        j / self.locations_per_link
    }

    /// The along-link cell index of grid location `j`.
    pub fn cell_of_location(&self, j: usize) -> usize {
        j % self.locations_per_link
    }

    /// Grid location index for link `i`, cell `u` (Def. 2's
    /// `j = (i-1) N/M + u`, 0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `u` is out of range.
    pub fn location_index(&self, i: usize, u: usize) -> usize {
        assert!(i < self.num_links(), "link {i} out of range");
        assert!(u < self.locations_per_link, "cell {u} out of range");
        i * self.locations_per_link + u
    }

    /// Borrows the underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.data
    }

    /// Consumes `self` and returns the underlying matrix.
    pub fn into_matrix(self) -> Matrix {
        self.data
    }

    /// RSS of link `i` with a target at location `j`.
    pub fn rss(&self, i: usize, j: usize) -> f64 {
        self.data[(i, j)]
    }

    /// The fingerprint column (all links) for a target at location `j`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        self.data.col(j)
    }

    /// Replaces the payload matrix, keeping the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the shape differs.
    pub fn with_matrix(&self, data: Matrix) -> Result<Self> {
        if data.shape() != self.data.shape() {
            return Err(CoreError::DimensionMismatch {
                context: "FingerprintMatrix::with_matrix",
                expected: format!("{:?}", self.data.shape()),
                got: format!("{:?}", data.shape()),
            });
        }
        Ok(FingerprintMatrix {
            data,
            locations_per_link: self.locations_per_link,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iupdater_rfsim::Environment;

    fn sample() -> FingerprintMatrix {
        let m = Matrix::from_fn(2, 6, |i, j| -(60.0 + i as f64 + j as f64));
        FingerprintMatrix::new(m, 3).unwrap()
    }

    #[test]
    fn construction_checks_shape() {
        let m = Matrix::zeros(2, 6);
        assert!(FingerprintMatrix::new(m.clone(), 3).is_ok());
        assert!(FingerprintMatrix::new(m.clone(), 4).is_err());
        assert!(FingerprintMatrix::new(m, 0).is_err());
        assert!(FingerprintMatrix::new(Matrix::zeros(0, 0), 1).is_err());
    }

    #[test]
    fn index_mapping() {
        let fp = sample();
        assert_eq!(fp.num_links(), 2);
        assert_eq!(fp.num_locations(), 6);
        assert_eq!(fp.location_index(1, 2), 5);
        assert_eq!(fp.link_of_location(5), 1);
        assert_eq!(fp.cell_of_location(5), 2);
    }

    #[test]
    fn survey_matches_testbed_geometry() {
        let t = Testbed::new(Environment::library(), 3);
        let fp = FingerprintMatrix::survey(&t, 0.0, 2);
        assert_eq!(fp.num_links(), 6);
        assert_eq!(fp.num_locations(), 72);
        assert_eq!(fp.locations_per_link(), 12);
    }

    #[test]
    fn no_decrease_survey_zeroes_affected_cells() {
        let t = Testbed::new(Environment::office(), 3);
        let xb = FingerprintMatrix::survey_no_decrease(&t, 0.0, 2);
        // A cell on the link's own row is large-decrease: must be zeroed.
        let d = t.deployment();
        assert_eq!(xb[(0, d.location_index(0, 5))], 0.0);
        // A far-away cell is a no-decrease cell: must carry RSS.
        assert!(xb[(0, d.location_index(7, 5))] < -20.0);
    }

    #[test]
    fn column_extraction() {
        let fp = sample();
        assert_eq!(fp.column(2), vec![fp.rss(0, 2), fp.rss(1, 2)]);
    }

    #[test]
    fn with_matrix_keeps_geometry() {
        let fp = sample();
        let replaced = fp.with_matrix(Matrix::zeros(2, 6)).unwrap();
        assert_eq!(replaced.locations_per_link(), 3);
        assert!(fp.with_matrix(Matrix::zeros(3, 6)).is_err());
    }

    #[test]
    fn expected_is_noiseless_and_deterministic() {
        let t = Testbed::new(Environment::hall(), 5);
        let a = FingerprintMatrix::expected(&t, 15.0);
        let b = FingerprintMatrix::expected(&t, 15.0);
        assert_eq!(a, b);
    }
}
