//! Cell classification and the index matrix `B` (Eq. 8 / Fig. 4).
//!
//! Each fingerprint cell `(i, j)` falls into one of three classes
//! depending on where location `j` sits relative to link `i`'s first
//! Fresnel zone: large decrease (target blocks the direct path), small
//! decrease (inside the FFZ), or no decrease (outside the FFZ). The
//! no-decrease cells can be measured *without* the target being present
//! and are therefore "free" — they form the known entries `X_B` with
//! mask `B` (`b_ij = 1` iff no-decrease).

use iupdater_linalg::Matrix;
use iupdater_rfsim::target::ObstructionEffect;
use iupdater_rfsim::Testbed;

use crate::{CoreError, Result};

/// Classification of every fingerprint cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellClassification {
    effects: Vec<ObstructionEffect>,
    rows: usize,
    cols: usize,
}

impl CellClassification {
    /// Classifies every cell of the testbed's fingerprint geometry.
    pub fn from_testbed(testbed: &Testbed) -> Self {
        let rows = testbed.deployment().num_links();
        let cols = testbed.deployment().num_locations();
        let effects = (0..rows)
            .flat_map(|i| (0..cols).map(move |j| (i, j)))
            .map(|(i, j)| testbed.obstruction_effect(i, j))
            .collect();
        CellClassification {
            effects,
            rows,
            cols,
        }
    }

    /// Builds a classification directly from per-cell effects
    /// (row-major).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if
    /// `effects.len() != rows * cols`.
    pub fn from_effects(effects: Vec<ObstructionEffect>, rows: usize, cols: usize) -> Result<Self> {
        if effects.len() != rows * cols {
            return Err(CoreError::DimensionMismatch {
                context: "CellClassification::from_effects",
                expected: format!("{} effects", rows * cols),
                got: format!("{}", effects.len()),
            });
        }
        Ok(CellClassification {
            effects,
            rows,
            cols,
        })
    }

    /// The effect class of cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn effect(&self, i: usize, j: usize) -> ObstructionEffect {
        assert!(i < self.rows && j < self.cols, "cell index out of bounds");
        self.effects[i * self.cols + j]
    }

    /// The index matrix `B` of Eq. (8): `b_ij = 1` for no-decrease cells
    /// (known without labor), `0` otherwise.
    pub fn index_matrix(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            if self.effect(i, j) == ObstructionEffect::NoDecrease {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Fraction of cells that are no-decrease (free to measure).
    pub fn free_fraction(&self) -> f64 {
        let free = self
            .effects
            .iter()
            .filter(|e| **e == ObstructionEffect::NoDecrease)
            .count();
        free as f64 / self.effects.len() as f64
    }

    /// Number of links (rows).
    pub fn num_links(&self) -> usize {
        self.rows
    }

    /// Number of locations (cols).
    pub fn num_locations(&self) -> usize {
        self.cols
    }
}

/// Shortcut: the index matrix `B` for a testbed.
pub fn index_matrix(testbed: &Testbed) -> Matrix {
    CellClassification::from_testbed(testbed).index_matrix()
}

/// Applies the mask: `X_B = B ∘ X` (Eq. 8).
///
/// # Errors
///
/// Returns a shape-mismatch error if `b` and `x` differ in shape.
pub fn mask_known(b: &Matrix, x: &Matrix) -> Result<Matrix> {
    Ok(b.hadamard(x)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iupdater_rfsim::Environment;

    #[test]
    fn own_row_cells_are_large_decrease() {
        let t = Testbed::new(Environment::office(), 1);
        let c = CellClassification::from_testbed(&t);
        let d = t.deployment();
        for i in 0..d.num_links() {
            for u in 0..d.locations_per_link() {
                assert_eq!(
                    c.effect(i, d.location_index(i, u)),
                    ObstructionEffect::LargeDecrease,
                    "cell on link {i}'s own row must be large-decrease"
                );
            }
        }
    }

    #[test]
    fn distant_row_cells_are_no_decrease() {
        let t = Testbed::new(Environment::office(), 1);
        let c = CellClassification::from_testbed(&t);
        let d = t.deployment();
        // Link 0 vs a target on link 7's row: far outside the FFZ.
        assert_eq!(
            c.effect(0, d.location_index(7, 5)),
            ObstructionEffect::NoDecrease
        );
    }

    #[test]
    fn index_matrix_is_binary_and_consistent() {
        let t = Testbed::new(Environment::library(), 2);
        let c = CellClassification::from_testbed(&t);
        let b = c.index_matrix();
        for i in 0..b.rows() {
            for j in 0..b.cols() {
                let v = b[(i, j)];
                assert!(v == 0.0 || v == 1.0);
                assert_eq!(v == 1.0, c.effect(i, j) == ObstructionEffect::NoDecrease);
            }
        }
    }

    #[test]
    fn majority_of_cells_are_free() {
        // With parallel links spaced >1 m apart, most (link, location)
        // pairs are unaffected — that is the economic premise of Eq. (8).
        let t = Testbed::new(Environment::office(), 3);
        let c = CellClassification::from_testbed(&t);
        let f = c.free_fraction();
        assert!(f > 0.5, "free fraction {f} too small");
        assert!(f < 1.0, "some cells must be affected");
    }

    #[test]
    fn mask_known_zeroes_unknown() {
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = Matrix::from_rows(&[&[-60.0, -61.0], &[-62.0, -63.0]]);
        let xb = mask_known(&b, &x).unwrap();
        assert_eq!(xb[(0, 0)], -60.0);
        assert_eq!(xb[(0, 1)], 0.0);
        assert_eq!(xb[(1, 0)], 0.0);
        assert_eq!(xb[(1, 1)], -63.0);
    }

    #[test]
    fn from_effects_validates_length() {
        let effects = vec![ObstructionEffect::NoDecrease; 5];
        assert!(CellClassification::from_effects(effects, 2, 3).is_err());
        let effects = vec![ObstructionEffect::NoDecrease; 6];
        assert!(CellClassification::from_effects(effects, 2, 3).is_ok());
    }
}
