//! The self-augmented RSVD solver — Algorithm 1 of the paper (Sec. IV-D/E).
//!
//! Minimises the full objective (Eq. 18):
//!
//! ```text
//!   λ(‖L‖² + ‖R‖²)                      (regularised rank surrogate)
//! + w_fit ‖B ∘ (L Rᵀ) − X_B‖²           (no-decrease data fit)
//! + w_ref ‖L Rᵀ − X_R Z‖²               (constraint 1: MIC correlation)
//! + w_g   ‖X_D G‖²                      (constraint 2a: continuity)
//! + w_h   ‖H X_D‖²                      (constraint 2b: link similarity)
//! ```
//!
//! by alternating closed-form per-column updates of `R` and per-row
//! updates of `L` (the paper's `MyInverse`). Every fingerprint column
//! `j` belongs to exactly one largely-decrease cell `X_D(ii, jj)` with
//! `ii = j / (N/M)`, `jj = j mod (N/M)` (Def. 2), so constraint 2
//! contributes one rank-one quadratic term plus (in
//! [`CouplingMode::Exact`]) a linear cross term per column.
//!
//! The paper's Algorithm 1 drops the cross terms (`C4 = C5 = O`); that
//! behaviour is available as [`CouplingMode::PaperLiteral`] and compared
//! in the `ablation_coupling` bench.

use iupdater_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{CouplingMode, ScalingMode, UpdaterConfig};
use crate::neighbors::continuity_matrix;
use crate::similarity::similarity_matrix;
use crate::{CoreError, Result};

/// Inputs to the solver, all shaped `M x N` unless noted.
#[derive(Debug, Clone)]
pub struct SolverInputs {
    /// Known no-decrease values (zeros elsewhere), Eq. (8)'s `X_B`.
    pub x_b: Matrix,
    /// Binary mask: 1 = known cell.
    pub b: Matrix,
    /// Constraint-1 target `P = X_R Z`, or `None` to disable.
    pub p: Option<Matrix>,
    /// Locations per link `N/M`.
    pub per: usize,
    /// Optional warm start for `X̂` (e.g. the stale fingerprint matrix);
    /// its rank-`r` SVD factors initialise `L`/`R` instead of the random
    /// `L0` of Algorithm 1 line 1.
    pub warm_start: Option<Matrix>,
}

/// The solver state and configuration.
#[derive(Debug)]
pub struct Solver {
    inputs: SolverInputs,
    cfg: UpdaterConfig,
    g: Option<Matrix>,
    h: Option<Matrix>,
    rank: usize,
}

/// The outcome of a solve: factors, reconstruction and diagnostics.
#[derive(Debug, Clone)]
pub struct SolveReport {
    l: Matrix,
    r: Matrix,
    objective_trace: Vec<f64>,
    iterations: usize,
    weights: TermWeights,
}

/// The effective (post-scaling) weights used for each objective term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TermWeights {
    /// Data-fit weight.
    pub fit: f64,
    /// Constraint-1 weight (0 when disabled).
    pub reference: f64,
    /// Continuity weight (0 when disabled).
    pub continuity: f64,
    /// Similarity weight (0 when disabled).
    pub similarity: f64,
}

impl SolveReport {
    /// The reconstructed fingerprint matrix `X̂ = L Rᵀ` (Algorithm 1
    /// line 10).
    pub fn reconstruction(&self) -> Matrix {
        self.l
            .matmul(&self.r.transpose())
            .expect("factor shapes are internally consistent")
    }

    /// The left factor `L` (`M x r`).
    pub fn l_factor(&self) -> &Matrix {
        &self.l
    }

    /// The right factor `R` (`N x r`).
    pub fn r_factor(&self) -> &Matrix {
        &self.r
    }

    /// Objective value after each iteration.
    pub fn objective_trace(&self) -> &[f64] {
        &self.objective_trace
    }

    /// Iterations actually performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The effective term weights after auto-scaling.
    pub fn weights(&self) -> TermWeights {
        self.weights
    }
}

impl Solver {
    /// Validates inputs and builds a solver.
    ///
    /// # Errors
    ///
    /// - [`CoreError::InvalidArgument`] for invalid config or `per`.
    /// - [`CoreError::DimensionMismatch`] for inconsistent shapes.
    pub fn new(inputs: SolverInputs, cfg: UpdaterConfig) -> Result<Self> {
        cfg.validate().map_err(CoreError::InvalidArgument)?;
        let (m, n) = inputs.x_b.shape();
        if m == 0 || n == 0 {
            return Err(CoreError::InvalidArgument("empty problem"));
        }
        if inputs.b.shape() != (m, n) {
            return Err(CoreError::DimensionMismatch {
                context: "Solver::new (mask)",
                expected: format!("{m}x{n}"),
                got: format!("{}x{}", inputs.b.rows(), inputs.b.cols()),
            });
        }
        if inputs.per == 0 || m * inputs.per != n {
            return Err(CoreError::DimensionMismatch {
                context: "Solver::new (per)",
                expected: format!("N = M * per = {m} * {}", inputs.per),
                got: format!("N = {n}"),
            });
        }
        if let Some(p) = &inputs.p {
            if p.shape() != (m, n) {
                return Err(CoreError::DimensionMismatch {
                    context: "Solver::new (P)",
                    expected: format!("{m}x{n}"),
                    got: format!("{}x{}", p.rows(), p.cols()),
                });
            }
        }
        if let Some(w) = &inputs.warm_start {
            if w.shape() != (m, n) {
                return Err(CoreError::DimensionMismatch {
                    context: "Solver::new (warm start)",
                    expected: format!("{m}x{n}"),
                    got: format!("{}x{}", w.rows(), w.cols()),
                });
            }
        }
        let rank = cfg.rank.unwrap_or(m).min(m).min(n).max(1);
        let (g, h) = if cfg.use_constraint2 {
            (
                Some(continuity_matrix(inputs.per)?),
                Some(similarity_matrix(m)?),
            )
        } else {
            (None, None)
        };
        Ok(Solver {
            inputs,
            cfg,
            g,
            h,
            rank,
        })
    }

    /// Runs Algorithm 1 to convergence or the iteration budget.
    ///
    /// # Errors
    ///
    /// Propagates linear-solver failures (singular normal equations can
    /// only arise from degenerate inputs such as an all-zero mask row
    /// with λ = 0).
    pub fn solve(&self) -> Result<SolveReport> {
        let (m, n) = self.inputs.x_b.shape();
        let r = self.rank;

        // --- Initialisation (Algorithm 1 line 1) -----------------------
        let (mut l, mut rm) = match &self.inputs.warm_start {
            Some(x0) => {
                let svd = x0.svd()?;
                let mut l = Matrix::zeros(m, r);
                let mut rr = Matrix::zeros(n, r);
                for t in 0..r.min(svd.singular_values.len()) {
                    let s = svd.singular_values[t].sqrt();
                    for i in 0..m {
                        l[(i, t)] = svd.u[(i, t)] * s;
                    }
                    for j in 0..n {
                        rr[(j, t)] = svd.v[(j, t)] * s;
                    }
                }
                (l, rr)
            }
            None => {
                let mut rng = StdRng::seed_from_u64(self.cfg.seed);
                // Random L0; scale so L Rᵀ can reach dBm magnitudes fast.
                let scale = (self.inputs.x_b.max_abs().max(1.0) / r as f64).sqrt();
                let l = Matrix::from_fn(m, r, |_, _| (rng.gen::<f64>() * 2.0 - 1.0) * scale);
                let rm = Matrix::from_fn(n, r, |_, _| (rng.gen::<f64>() * 2.0 - 1.0) * scale);
                (l, rm)
            }
        };

        // --- Term weights (the paper's magnitude scaling) ---------------
        let weights = self.effective_weights(&l, &rm)?;

        // --- Alternating minimisation -----------------------------------
        let mut trace = Vec::with_capacity(self.cfg.max_iter + 1);
        trace.push(self.objective(&l, &rm, &weights)?);
        let mut iterations = 0;
        for _ in 0..self.cfg.max_iter {
            self.update_columns(&l, &mut rm, &weights)?;
            self.update_rows(&mut l, &rm, &weights)?;
            iterations += 1;
            let v = self.objective(&l, &rm, &weights)?;
            let prev = *trace.last().expect("trace non-empty");
            trace.push(v);
            // Stop on relative stagnation (plays the role of v_th).
            if (prev - v).abs() <= self.cfg.tol * prev.abs().max(1e-12) {
                break;
            }
        }
        Ok(SolveReport {
            l,
            r: rm,
            objective_trace: trace,
            iterations,
            weights,
        })
    }

    /// Computes effective weights: `Fixed` passes the config through,
    /// `Auto` additionally balances each constraint against the data-fit
    /// magnitude at the initial point.
    fn effective_weights(&self, l: &Matrix, rm: &Matrix) -> Result<TermWeights> {
        let cfg = &self.cfg;
        let base = TermWeights {
            fit: cfg.weight_fit,
            reference: if cfg.use_constraint1 && self.inputs.p.is_some() {
                cfg.weight_ref
            } else {
                0.0
            },
            continuity: if cfg.use_constraint2 {
                cfg.weight_continuity
            } else {
                0.0
            },
            similarity: if cfg.use_constraint2 {
                cfg.weight_similarity
            } else {
                0.0
            },
        };
        if cfg.scaling == ScalingMode::Fixed {
            return Ok(base);
        }
        // Auto: express each term per element and scale to the data-fit
        // per-element magnitude at the initial point.
        let xhat = l.matmul(&rm.transpose())?;
        let fit_resid = self.inputs.b.hadamard(&xhat)?.checked_sub(&self.inputs.x_b)?;
        let known = self.inputs.b.iter().filter(|&&v| v != 0.0).count().max(1);
        let fit_mag = (fit_resid.frobenius_norm_sq() / known as f64).max(1e-9);

        let scale_for = |value: f64, count: usize| -> f64 {
            let per_elem = (value / count.max(1) as f64).max(1e-12);
            (fit_mag / per_elem).clamp(0.05, 20.0)
        };

        let mut w = base;
        if w.reference > 0.0 {
            if let Some(p) = &self.inputs.p {
                let resid = xhat.checked_sub(p)?;
                w.reference *= scale_for(resid.frobenius_norm_sq(), p.rows() * p.cols());
            }
        }
        if w.continuity > 0.0 || w.similarity > 0.0 {
            let xd = crate::decrease::extract(&xhat, self.inputs.per)?;
            if let (Some(g), w_g) = (&self.g, w.continuity) {
                if w_g > 0.0 {
                    let v = xd.matmul(g)?.frobenius_norm_sq();
                    w.continuity *= scale_for(v, xd.rows() * xd.cols());
                }
            }
            if let (Some(h), w_h) = (&self.h, w.similarity) {
                if w_h > 0.0 {
                    let v = h.matmul(&xd)?.frobenius_norm_sq();
                    w.similarity *= scale_for(v, xd.rows() * xd.cols());
                }
            }
        }
        Ok(w)
    }

    /// The full objective (Eq. 18) at `(L, R)` under `w`.
    fn objective(&self, l: &Matrix, rm: &Matrix, w: &TermWeights) -> Result<f64> {
        let xhat = l.matmul(&rm.transpose())?;
        let mut v = self.cfg.lambda * (l.frobenius_norm_sq() + rm.frobenius_norm_sq());
        let fit = self.inputs.b.hadamard(&xhat)?.checked_sub(&self.inputs.x_b)?;
        v += w.fit * fit.frobenius_norm_sq();
        if w.reference > 0.0 {
            if let Some(p) = &self.inputs.p {
                v += w.reference * xhat.checked_sub(p)?.frobenius_norm_sq();
            }
        }
        if w.continuity > 0.0 || w.similarity > 0.0 {
            let xd = crate::decrease::extract(&xhat, self.inputs.per)?;
            if let Some(g) = &self.g {
                if w.continuity > 0.0 {
                    v += w.continuity * xd.matmul(g)?.frobenius_norm_sq();
                }
            }
            if let Some(h) = &self.h {
                if w.similarity > 0.0 {
                    v += w.similarity * h.matmul(&xd)?.frobenius_norm_sq();
                }
            }
        }
        Ok(v)
    }

    /// One sweep of per-column closed-form updates of `R`
    /// (the `MyInverse(..., L̂, ...)` call of Algorithm 1 line 3).
    fn update_columns(&self, l: &Matrix, rm: &mut Matrix, w: &TermWeights) -> Result<()> {
        let (m, n) = self.inputs.x_b.shape();
        let r = self.rank;
        let per = self.inputs.per;
        // Precompute LᵀL for the reference term (Q3 of Algorithm 1).
        let ltl = if w.reference > 0.0 {
            Some(l.gram())
        } else {
            None
        };

        for j in 0..n {
            let ii = j / per;
            let jj = j % per;
            let lrow = l.row(ii);

            let mut a = Matrix::identity(r).scale(self.cfg.lambda);
            let mut rhs = vec![0.0_f64; r];

            // Data-fit term: Q2/C2 (masked rows only).
            for i in 0..m {
                if self.inputs.b[(i, j)] == 0.0 {
                    continue;
                }
                let li = l.row(i);
                let y = self.inputs.x_b[(i, j)];
                for a_idx in 0..r {
                    rhs[a_idx] += w.fit * y * li[a_idx];
                    let row = a.row_mut(a_idx);
                    for b_idx in 0..r {
                        row[b_idx] += w.fit * li[a_idx] * li[b_idx];
                    }
                }
            }

            // Constraint 1: Q3/C3.
            if let (Some(ltl), Some(p)) = (&ltl, &self.inputs.p) {
                for a_idx in 0..r {
                    let row = a.row_mut(a_idx);
                    for b_idx in 0..r {
                        row[b_idx] += w.reference * ltl[(a_idx, b_idx)];
                    }
                }
                for i in 0..m {
                    let pij = p[(i, j)];
                    if pij == 0.0 {
                        continue;
                    }
                    let li = l.row(i);
                    for a_idx in 0..r {
                        rhs[a_idx] += w.reference * pij * li[a_idx];
                    }
                }
            }

            // Constraint 2: Q4/Q5 (+C4/C5 in Exact mode).
            if let Some(g) = &self.g {
                if w.continuity > 0.0 {
                    let (q4, c4) = match self.cfg.coupling {
                        CouplingMode::PaperLiteral => {
                            // Algorithm 1 line 18: column jj of G.
                            let norm_sq: f64 = (0..per).map(|u| g[(u, jj)] * g[(u, jj)]).sum();
                            (w.continuity * norm_sq, 0.0)
                        }
                        CouplingMode::Exact => {
                            // Row jj of G (the true coefficient of
                            // X_D(ii, jj) in X_D * G) plus the cross term.
                            let norm_sq: f64 = (0..per).map(|p_| g[(jj, p_)] * g[(jj, p_)]).sum();
                            let mut cross = 0.0;
                            for p_ in 0..per {
                                let gjp = g[(jj, p_)];
                                if gjp == 0.0 {
                                    continue;
                                }
                                // c_p = Σ_{u≠jj} X_D(ii, u) G(u, p).
                                let mut c_p = 0.0;
                                for u in 0..per {
                                    if u == jj {
                                        continue;
                                    }
                                    let gup = g[(u, p_)];
                                    if gup == 0.0 {
                                        continue;
                                    }
                                    let col = ii * per + u;
                                    c_p += Matrix::dot(lrow, rm.row(col)) * gup;
                                }
                                cross += c_p * gjp;
                            }
                            (w.continuity * norm_sq, -w.continuity * cross)
                        }
                    };
                    for a_idx in 0..r {
                        rhs[a_idx] += c4 * lrow[a_idx];
                        let row = a.row_mut(a_idx);
                        for b_idx in 0..r {
                            row[b_idx] += q4 * lrow[a_idx] * lrow[b_idx];
                        }
                    }
                }
            }
            if let Some(h) = &self.h {
                if w.similarity > 0.0 {
                    // Column ii of H is the coefficient of X_D(ii, jj) in
                    // H X_D (the dimension-correct reading of Algorithm 1
                    // line 19, whose printed index is a typo).
                    let norm_sq: f64 = (0..m).map(|p_| h[(p_, ii)] * h[(p_, ii)]).sum();
                    let c5 = match self.cfg.coupling {
                        CouplingMode::PaperLiteral => 0.0,
                        CouplingMode::Exact => {
                            let mut cross = 0.0;
                            for p_ in 0..m {
                                let hpi = h[(p_, ii)];
                                if hpi == 0.0 {
                                    continue;
                                }
                                // e_p = Σ_{k≠ii} H(p, k) X_D(k, jj).
                                let mut e_p = 0.0;
                                for k in 0..m {
                                    if k == ii {
                                        continue;
                                    }
                                    let hpk = h[(p_, k)];
                                    if hpk == 0.0 {
                                        continue;
                                    }
                                    let col = k * per + jj;
                                    e_p += Matrix::dot(l.row(k), rm.row(col)) * hpk;
                                }
                                cross += e_p * hpi;
                            }
                            -w.similarity * cross
                        }
                    };
                    let q5 = w.similarity * norm_sq;
                    for a_idx in 0..r {
                        rhs[a_idx] += c5 * lrow[a_idx];
                        let row = a.row_mut(a_idx);
                        for b_idx in 0..r {
                            row[b_idx] += q5 * lrow[a_idx] * lrow[b_idx];
                        }
                    }
                }
            }

            let theta = a.solve(&rhs)?;
            rm.set_row(j, &theta);
        }
        Ok(())
    }

    /// One sweep of per-row closed-form updates of `L`
    /// (the transposed `MyInverse` call of Algorithm 1 line 4).
    fn update_rows(&self, l: &mut Matrix, rm: &Matrix, w: &TermWeights) -> Result<()> {
        let (m, n) = self.inputs.x_b.shape();
        let r = self.rank;
        let per = self.inputs.per;
        let rtr = if w.reference > 0.0 {
            Some(rm.gram())
        } else {
            None
        };

        for i in 0..m {
            let mut a = Matrix::identity(r).scale(self.cfg.lambda);
            let mut rhs = vec![0.0_f64; r];

            // Data-fit.
            for j in 0..n {
                if self.inputs.b[(i, j)] == 0.0 {
                    continue;
                }
                let tj = rm.row(j);
                let y = self.inputs.x_b[(i, j)];
                for a_idx in 0..r {
                    rhs[a_idx] += w.fit * y * tj[a_idx];
                    let row = a.row_mut(a_idx);
                    for b_idx in 0..r {
                        row[b_idx] += w.fit * tj[a_idx] * tj[b_idx];
                    }
                }
            }

            // Constraint 1.
            if let (Some(rtr), Some(p)) = (&rtr, &self.inputs.p) {
                for a_idx in 0..r {
                    let row = a.row_mut(a_idx);
                    for b_idx in 0..r {
                        row[b_idx] += w.reference * rtr[(a_idx, b_idx)];
                    }
                }
                for j in 0..n {
                    let pij = p[(i, j)];
                    if pij == 0.0 {
                        continue;
                    }
                    let tj = rm.row(j);
                    for a_idx in 0..r {
                        rhs[a_idx] += w.reference * pij * tj[a_idx];
                    }
                }
            }

            // Constraint 2a (continuity): row i of X_D is wholly owned by
            // ℓ_i, so the term is a clean quadratic: Σ_p (ℓᵀ m_p)² with
            // m_p = Σ_u G(u, p) θ_{i*per+u}. No cross terms in any mode.
            if let Some(g) = &self.g {
                if w.continuity > 0.0 {
                    for p_ in 0..per {
                        let mut m_p = vec![0.0_f64; r];
                        for u in 0..per {
                            let gup = g[(u, p_)];
                            if gup == 0.0 {
                                continue;
                            }
                            let tj = rm.row(i * per + u);
                            for a_idx in 0..r {
                                m_p[a_idx] += gup * tj[a_idx];
                            }
                        }
                        for a_idx in 0..r {
                            let row = a.row_mut(a_idx);
                            for b_idx in 0..r {
                                row[b_idx] += w.continuity * m_p[a_idx] * m_p[b_idx];
                            }
                        }
                    }
                }
            }

            // Constraint 2b (similarity): ℓ_i appears in H X_D through
            // column i of H; cross terms couple to the other links' rows.
            if let Some(h) = &self.h {
                if w.similarity > 0.0 {
                    let norm_sq: f64 = (0..m).map(|p_| h[(p_, i)] * h[(p_, i)]).sum();
                    for u in 0..per {
                        let tj = rm.row(i * per + u);
                        for a_idx in 0..r {
                            let row = a.row_mut(a_idx);
                            for b_idx in 0..r {
                                row[b_idx] += w.similarity * norm_sq * tj[a_idx] * tj[b_idx];
                            }
                        }
                    }
                    if self.cfg.coupling == CouplingMode::Exact {
                        for u in 0..per {
                            let tj = rm.row(i * per + u);
                            // Σ_p H(p, i) e_{p,u},
                            // e_{p,u} = Σ_{k≠i} H(p, k) X_D(k, u).
                            let mut cross = 0.0;
                            for p_ in 0..m {
                                let hpi = h[(p_, i)];
                                if hpi == 0.0 {
                                    continue;
                                }
                                let mut e_pu = 0.0;
                                for k in 0..m {
                                    if k == i {
                                        continue;
                                    }
                                    let hpk = h[(p_, k)];
                                    if hpk == 0.0 {
                                        continue;
                                    }
                                    e_pu += hpk * Matrix::dot(l.row(k), rm.row(k * per + u));
                                }
                                cross += hpi * e_pu;
                            }
                            for a_idx in 0..r {
                                rhs[a_idx] -= w.similarity * cross * tj[a_idx];
                            }
                        }
                    }
                }
            }

            let ell = a.solve(&rhs)?;
            l.set_row(i, &ell);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// A synthetic "fingerprint" with the right structural shape:
    /// smooth per-link dip profiles, similar adjacent links.
    fn structured_fingerprint(m: usize, per: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<f64> = (0..m).map(|_| -62.0 + (rng.gen::<f64>() - 0.5) * 4.0).collect();
        Matrix::from_fn(m, m * per, |i, j| {
            let owner = j / per;
            let u = j % per;
            if owner == i {
                // Dip profile: deep near the ends, shallow at the middle.
                let x = u as f64 / (per - 1) as f64;
                let dip = 4.0 + 5.0 * (2.0 * x - 1.0).powi(2);
                base[i] - dip
            } else if owner.abs_diff(i) == 1 {
                base[i] - 1.0
            } else {
                base[i]
            }
        })
    }

    fn mask_no_decrease(m: usize, per: usize) -> Matrix {
        Matrix::from_fn(m, m * per, |i, j| {
            let owner = j / per;
            if owner.abs_diff(i) <= 1 {
                0.0
            } else {
                1.0
            }
        })
    }

    fn default_cfg() -> UpdaterConfig {
        UpdaterConfig {
            rank: Some(6),
            max_iter: 40,
            ..UpdaterConfig::default()
        }
    }

    #[test]
    fn shapes_validated() {
        let x_b = Matrix::zeros(4, 12);
        let b = Matrix::zeros(4, 12);
        let ok = SolverInputs {
            x_b: x_b.clone(),
            b: b.clone(),
            p: None,
            per: 3,
            warm_start: None,
        };
        assert!(Solver::new(ok, default_cfg()).is_ok());
        let bad_per = SolverInputs {
            x_b: x_b.clone(),
            b: b.clone(),
            p: None,
            per: 5,
            warm_start: None,
        };
        assert!(Solver::new(bad_per, default_cfg()).is_err());
        let bad_mask = SolverInputs {
            x_b: x_b.clone(),
            b: Matrix::zeros(4, 11),
            p: None,
            per: 3,
            warm_start: None,
        };
        assert!(Solver::new(bad_mask, default_cfg()).is_err());
        let bad_p = SolverInputs {
            x_b,
            b,
            p: Some(Matrix::zeros(3, 12)),
            per: 3,
            warm_start: None,
        };
        assert!(Solver::new(bad_p, default_cfg()).is_err());
    }

    #[test]
    fn exact_mode_objective_never_increases() {
        let x = structured_fingerprint(6, 8, 1);
        let b = mask_no_decrease(6, 8);
        let x_b = b.hadamard(&x).unwrap();
        let inputs = SolverInputs {
            x_b,
            b,
            p: Some(x.clone()),
            per: 8,
            warm_start: None,
        };
        let cfg = UpdaterConfig {
            rank: Some(6),
            max_iter: 25,
            scaling: ScalingMode::Fixed,
            coupling: CouplingMode::Exact,
            ..UpdaterConfig::default()
        };
        let report = Solver::new(inputs, cfg).unwrap().solve().unwrap();
        let tr = report.objective_trace();
        for w in tr.windows(2) {
            assert!(
                w[1] <= w[0] * (1.0 + 1e-8),
                "objective increased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn constraint1_pins_down_reconstruction() {
        // With a perfect P = X, the reconstruction must approach X even
        // on unknown cells (constraint 2 off: its smoothing bias is
        // tested separately).
        let x = structured_fingerprint(6, 8, 2);
        let b = mask_no_decrease(6, 8);
        let x_b = b.hadamard(&x).unwrap();
        let inputs = SolverInputs {
            x_b,
            b: b.clone(),
            p: Some(x.clone()),
            per: 8,
            warm_start: None,
        };
        let cfg = UpdaterConfig {
            use_constraint2: false,
            ..default_cfg()
        };
        let report = Solver::new(inputs, cfg).unwrap().solve().unwrap();
        let xhat = report.reconstruction();
        let mut worst: f64 = 0.0;
        for i in 0..6 {
            for j in 0..48 {
                worst = worst.max((xhat[(i, j)] - x[(i, j)]).abs());
            }
        }
        assert!(worst < 1.5, "worst-cell error {worst} dB with perfect constraint 1");
    }

    #[test]
    fn constraint2_suppresses_outliers() {
        // Truth whose largely-decrease structure satisfies constraint 2
        // exactly (identical links, flat dip => X_D G = 0 and H X_D = 0),
        // with heavy noise injected into P's large-decrease cells: the
        // constraint should then strictly reduce the error (pure noise
        // suppression, zero bias).
        let (m, per) = (6usize, 8usize);
        let x = Matrix::from_fn(m, m * per, |i, j| {
            let owner = j / per;
            if owner == i {
                -68.0
            } else {
                -62.0
            }
        });
        let b = mask_no_decrease(m, per);
        let x_b = b.hadamard(&x).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let mut p_noisy = x.clone();
        for i in 0..m {
            for u in 0..per {
                let j = i * per + u;
                if u % 2 == 0 {
                    p_noisy[(i, j)] += (rng.gen::<f64>() - 0.5) * 12.0;
                }
            }
        }
        let err_with = |use_c2: bool| {
            let cfg = UpdaterConfig {
                rank: Some(6),
                max_iter: 40,
                use_constraint2: use_c2,
                weight_continuity: 0.5,
                weight_similarity: 0.2,
                ..UpdaterConfig::default()
            };
            let inputs = SolverInputs {
                x_b: x_b.clone(),
                b: b.clone(),
                p: Some(p_noisy.clone()),
                per: 8,
                warm_start: None,
            };
            let xhat = Solver::new(inputs, cfg).unwrap().solve().unwrap().reconstruction();
            let mut err = 0.0;
            for i in 0..6 {
                for u in 0..8 {
                    let j = i * 8 + u;
                    err += (xhat[(i, j)] - x[(i, j)]).abs();
                }
            }
            err / 48.0
        };
        let with_c2 = err_with(true);
        let without = err_with(false);
        assert!(
            with_c2 < without,
            "constraint 2 should reduce large-decrease error: {with_c2} vs {without}"
        );
    }

    #[test]
    fn warm_start_reproduces_truth_quickly() {
        let x = structured_fingerprint(8, 12, 4);
        let b = mask_no_decrease(8, 12);
        let x_b = b.hadamard(&x).unwrap();
        let inputs = SolverInputs {
            x_b,
            b,
            p: Some(x.clone()),
            per: 12,
            warm_start: Some(x.clone()),
        };
        let cfg = UpdaterConfig {
            rank: Some(8),
            max_iter: 10,
            ..UpdaterConfig::default()
        };
        let report = Solver::new(inputs, cfg).unwrap().solve().unwrap();
        let xhat = report.reconstruction();
        let rel = (&xhat - &x).frobenius_norm() / x.frobenius_norm();
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn paper_literal_mode_still_converges() {
        let x = structured_fingerprint(6, 8, 5);
        let b = mask_no_decrease(6, 8);
        let x_b = b.hadamard(&x).unwrap();
        let inputs = SolverInputs {
            x_b,
            b,
            p: Some(x.clone()),
            per: 8,
            warm_start: None,
        };
        let cfg = UpdaterConfig {
            rank: Some(6),
            coupling: CouplingMode::PaperLiteral,
            max_iter: 40,
            ..UpdaterConfig::default()
        };
        let report = Solver::new(inputs, cfg).unwrap().solve().unwrap();
        let xhat = report.reconstruction();
        let rel = (&xhat - &x).frobenius_norm() / x.frobenius_norm();
        assert!(rel < 0.1, "paper-literal relative error {rel}");
    }

    #[test]
    fn deterministic_given_seed() {
        let x = structured_fingerprint(4, 6, 6);
        let b = mask_no_decrease(4, 6);
        let x_b = b.hadamard(&x).unwrap();
        let mk = || SolverInputs {
            x_b: x_b.clone(),
            b: b.clone(),
            p: Some(x.clone()),
            per: 6,
            warm_start: None,
        };
        let cfg = UpdaterConfig {
            rank: Some(4),
            max_iter: 15,
            ..UpdaterConfig::default()
        };
        let a = Solver::new(mk(), cfg.clone()).unwrap().solve().unwrap();
        let b2 = Solver::new(mk(), cfg).unwrap().solve().unwrap();
        assert!(a.reconstruction().approx_eq(&b2.reconstruction(), 1e-12));
    }

    #[test]
    fn report_accessors() {
        let x = structured_fingerprint(4, 6, 8);
        let b = mask_no_decrease(4, 6);
        let x_b = b.hadamard(&x).unwrap();
        let inputs = SolverInputs {
            x_b,
            b,
            p: Some(x),
            per: 6,
            warm_start: None,
        };
        let cfg = UpdaterConfig {
            rank: Some(3),
            max_iter: 5,
            ..UpdaterConfig::default()
        };
        let report = Solver::new(inputs, cfg).unwrap().solve().unwrap();
        assert_eq!(report.l_factor().shape(), (4, 3));
        assert_eq!(report.r_factor().shape(), (24, 3));
        assert!(report.iterations() >= 1 && report.iterations() <= 5);
        assert!(report.weights().fit > 0.0);
        assert_eq!(report.objective_trace().len(), report.iterations() + 1);
    }
}
