//! Backwards-compatibility shim: the self-augmented RSVD solver now
//! lives in the layered [`crate::solver`] module tree ([`crate::solver::terms`]
//! for the penalty terms, `solver::engine` for the parallel ALS
//! engine). This alias keeps historical import paths working.

pub use crate::solver::{SolveReport, Solver, SolverInputs, TermWeights};
