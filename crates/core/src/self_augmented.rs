//! Backwards-compatibility shim: the self-augmented RSVD solver now
//! lives in the layered [`crate::solver`] module tree ([`crate::solver::terms`]
//! for the penalty terms, `solver::engine` for the parallel ALS
//! engine). This alias keeps historical import paths working.
//!
//! The *construction* side of the pipeline (MIC + correlation
//! learning) lives in [`crate::reconstruct`]; since the incremental
//! updater work it offers warm-start constructors
//! ([`crate::Updater::warm_start`], [`crate::Updater::from_basis`])
//! alongside the from-scratch [`crate::Updater::new`].

pub use crate::solver::{SolveReport, Solver, SolverInputs, TermWeights};
