//! Target localization via nonlinear optimisation with OMP (Sec. V).
//!
//! The online measurement model is `y = X̂ W + N` (Eq. 26) with a
//! {0,1}-sparse location vector `W`; the estimate solves
//! `min ‖X̂ Ŵ − y‖₂²` greedily by OMP (Eq. 27). The strongest selected
//! atom's column index is the estimated grid location.
//!
//! The serving path runs against a [`PreparedDictionary`] built once at
//! construction ([`Localizer::new`], hence once per database publish):
//! [`Localizer::localize`] / [`Localizer::localize_with_scratch`] for
//! single queries and [`Localizer::localize_batch`] to fan a query slab
//! across the persistent worker pool. The original per-query scalar
//! path is kept verbatim as [`Localizer::localize_unprepared`] — the
//! golden oracle the `query_parity` tier pins every fast path against.

use iupdater_linalg::Matrix;
use rayon::prelude::*;

use crate::config::{AtomSelection, LocalizerConfig};
use crate::fingerprint::FingerprintMatrix;
use crate::omp::{orthogonal_matching_pursuit, OmpSolution};
use crate::query::{PreparedDictionary, QueryScratch, BINARY_LANES, QUERY_CHUNK};
use crate::{CoreError, Result};

/// A grid-location estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationEstimate {
    /// Estimated grid index (column of the fingerprint matrix).
    pub grid: usize,
    /// Full OMP support (useful for multi-target extensions).
    pub support: Vec<usize>,
    /// OMP coefficients over the support.
    pub coefficients: Vec<f64>,
    /// Final squared residual.
    pub residual_sq: f64,
}

/// Matches online RSS vectors against a fingerprint matrix.
#[derive(Debug, Clone)]
pub struct Localizer {
    fingerprint: FingerprintMatrix,
    config: LocalizerConfig,
    /// Publish-time query structures (centred dictionary, atom rows,
    /// column norms, optional Gram cache).
    prepared: PreparedDictionary,
}

impl Localizer {
    /// Builds a localizer over a fingerprint matrix, preparing the
    /// query structures once so every subsequent query pays only the
    /// pursuit itself.
    pub fn new(fingerprint: FingerprintMatrix, config: LocalizerConfig) -> Self {
        let prepared = PreparedDictionary::prepare(fingerprint.matrix(), &config);
        Localizer {
            fingerprint,
            config,
            prepared,
        }
    }

    /// Estimates the grid location for an online measurement `y`
    /// (one RSS value per link, Eq. 25).
    ///
    /// Convenience wrapper over [`Self::localize_with_scratch`] with a
    /// throwaway scratch; loops over many queries should hold one
    /// [`QueryScratch`] (or call [`Self::localize_batch`]) instead.
    ///
    /// # Errors
    ///
    /// - [`CoreError::DimensionMismatch`] if `y.len()` differs from the
    ///   link count.
    /// - [`CoreError::InvalidArgument`] if OMP selects no atom (zero
    ///   dictionary).
    pub fn localize(&self, y: &[f64]) -> Result<LocationEstimate> {
        let mut scratch = QueryScratch::new();
        self.localize_with_scratch(y, &mut scratch)
    }

    /// [`Self::localize`] against caller-held working memory: after the
    /// first call at a given database shape the pursuit allocates only
    /// its output. Answers are identical to [`Self::localize`] and to
    /// [`Self::localize_unprepared`] (pinned by `query_parity`).
    ///
    /// # Errors
    ///
    /// As for [`Self::localize`].
    pub fn localize_with_scratch(
        &self,
        y: &[f64],
        scratch: &mut QueryScratch,
    ) -> Result<LocationEstimate> {
        if y.len() != self.fingerprint.num_links() {
            return Err(CoreError::DimensionMismatch {
                context: "Localizer::localize",
                expected: format!("{} link measurements", self.fingerprint.num_links()),
                got: format!("{}", y.len()),
            });
        }
        let sol = self.prepared.pursue(y, &self.config, scratch)?;
        self.estimate_from(sol)
    }

    /// Localizes a slab of queries across the persistent worker pool.
    ///
    /// The slab is split into fixed [`QUERY_CHUNK`]-sized chunks, one
    /// reusable scratch per chunk; chunk boundaries depend only on the
    /// slab length and results are reassembled in input order, so the
    /// output is identical at any worker count — and element-for-element
    /// identical to calling [`Self::localize`] in a loop. Under the
    /// binary-residual model, each chunk additionally advances
    /// `BINARY_LANES` queries per sweep of the atom rows (interleaved
    /// distance chains — same bits, vectorised cost).
    ///
    /// # Errors
    ///
    /// A per-query error (dimension mismatch or degenerate selection),
    /// as for [`Self::localize`], if any query in the slab fails.
    pub fn localize_batch(&self, queries: &[Vec<f64>]) -> Result<Vec<LocationEstimate>> {
        let n_chunks = queries.len().div_ceil(QUERY_CHUNK);
        let per_chunk: Vec<Result<Vec<LocationEstimate>>> = (0..n_chunks)
            .into_par_iter()
            .map(|ci| {
                let start = ci * QUERY_CHUNK;
                let end = (start + QUERY_CHUNK).min(queries.len());
                let mut scratch = QueryScratch::new();
                self.localize_chunk(&queries[start..end], &mut scratch)
            })
            .collect();
        let mut out = Vec::with_capacity(queries.len());
        for chunk in per_chunk {
            out.extend(chunk?);
        }
        Ok(out)
    }

    /// One batch chunk: blocked lane-interleaved pursuit for the
    /// binary model, the per-query prepared path otherwise. Answers
    /// are identical to a [`Self::localize_with_scratch`] loop.
    fn localize_chunk(
        &self,
        queries: &[Vec<f64>],
        scratch: &mut QueryScratch,
    ) -> Result<Vec<LocationEstimate>> {
        if self.config.selection != AtomSelection::BinaryResidual {
            return queries
                .iter()
                .map(|y| self.localize_with_scratch(y, scratch))
                .collect();
        }
        let mut out = Vec::with_capacity(queries.len());
        let mut blocks = queries.chunks_exact(BINARY_LANES);
        for block in blocks.by_ref() {
            for y in block {
                if y.len() != self.fingerprint.num_links() {
                    return Err(CoreError::DimensionMismatch {
                        context: "Localizer::localize",
                        expected: format!("{} link measurements", self.fingerprint.num_links()),
                        got: format!("{}", y.len()),
                    });
                }
            }
            for sol in self
                .prepared
                .binary_pursuit_block(block, &self.config, scratch)
            {
                out.push(self.estimate_from(sol)?);
            }
        }
        for y in blocks.remainder() {
            out.push(self.localize_with_scratch(y, scratch)?);
        }
        Ok(out)
    }

    /// The original per-query scalar path, kept verbatim as the golden
    /// oracle for the prepared fast paths (the read-path analogue of
    /// `solver/reference.rs`): centres `y`, runs the configured pursuit
    /// with per-step `select_cols`/`gram`/`solve` rebuilds, extracts
    /// the grid estimate. `query_parity` asserts the prepared paths
    /// match this bit-for-bit on supports and grids.
    ///
    /// # Errors
    ///
    /// As for [`Self::localize`].
    pub fn localize_unprepared(&self, y: &[f64]) -> Result<LocationEstimate> {
        if y.len() != self.fingerprint.num_links() {
            return Err(CoreError::DimensionMismatch {
                context: "Localizer::localize",
                expected: format!("{} link measurements", self.fingerprint.num_links()),
                got: format!("{}", y.len()),
            });
        }
        let centered = self.prepared.center_query(y);
        let sol = match self.config.selection {
            AtomSelection::Correlation => orthogonal_matching_pursuit(
                self.prepared.dictionary(),
                &centered,
                self.config.max_atoms,
                self.config.residual_threshold,
            )?,
            AtomSelection::BinaryResidual => self.binary_pursuit(&centered),
        };
        self.estimate_from(sol)
    }

    /// The location estimate from a pursuit solution: the first atom
    /// under the binary model (greedy order = match quality), the
    /// strongest coefficient under classic OMP.
    fn estimate_from(&self, sol: OmpSolution) -> Result<LocationEstimate> {
        let grid = match self.config.selection {
            AtomSelection::BinaryResidual => sol.support.first().copied(),
            AtomSelection::Correlation => sol
                .support
                .iter()
                .zip(&sol.coefficients)
                .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                .map(|(&j, _)| j),
        }
        .ok_or(CoreError::InvalidArgument(
            "matching selected no atom (degenerate fingerprint matrix)",
        ))?;
        Ok(LocationEstimate {
            grid,
            support: sol.support,
            coefficients: sol.coefficients,
            residual_sq: sol.residual_sq,
        })
    }

    /// Greedy pursuit under the binary location model of Eq. (26):
    /// coefficients are fixed at 1, so each step picks the column that
    /// minimises the residual `‖r − x_j‖₂²` and subtracts it. This is
    /// the oracle-side loop (strided column walks, `support.contains`);
    /// the prepared twin scans contiguous atom rows in the same
    /// ascending-link order, so both produce identical bits.
    fn binary_pursuit(&self, y: &[f64]) -> OmpSolution {
        let dictionary: &Matrix = self.prepared.dictionary();
        let m = dictionary.rows();
        let n = dictionary.cols();
        let mut residual = y.to_vec();
        let mut support = Vec::new();
        for _ in 0..self.config.max_atoms.min(n) {
            let mut best = None;
            let mut best_dist = f64::INFINITY;
            for j in 0..n {
                if support.contains(&j) {
                    continue;
                }
                let dist: f64 = (0..m)
                    .map(|i| {
                        let d = residual[i] - dictionary[(i, j)];
                        d * d
                    })
                    .sum();
                if dist < best_dist {
                    best_dist = dist;
                    best = Some(j);
                }
            }
            let Some(j_star) = best else { break };
            // Only keep the atom if it actually reduces the residual.
            let current: f64 = residual.iter().map(|r| r * r).sum();
            if best_dist >= current && !support.is_empty() {
                break;
            }
            support.push(j_star);
            for (i, r) in residual.iter_mut().enumerate().take(m) {
                *r -= dictionary[(i, j_star)];
            }
            let res_sq: f64 = residual.iter().map(|r| r * r).sum();
            if res_sq < self.config.residual_threshold {
                break;
            }
        }
        let residual_sq = residual.iter().map(|r| r * r).sum();
        let coefficients = vec![1.0; support.len()];
        OmpSolution {
            support,
            coefficients,
            residual_sq,
        }
    }

    /// The fingerprint database in use.
    pub fn fingerprint(&self) -> &FingerprintMatrix {
        &self.fingerprint
    }

    /// The configuration in use.
    pub fn config(&self) -> &LocalizerConfig {
        &self.config
    }

    /// The prepared query structures in use.
    pub fn prepared(&self) -> &PreparedDictionary {
        &self.prepared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iupdater_rfsim::{Environment, Testbed};

    fn office_localizer(seed: u64) -> (Testbed, Localizer) {
        let t = Testbed::new(Environment::office(), seed);
        let fp = FingerprintMatrix::survey(&t, 0.0, 20);
        (t, Localizer::new(fp, LocalizerConfig::default()))
    }

    #[test]
    fn localizes_clean_measurements_accurately() {
        let (t, loc) = office_localizer(11);
        let d = t.deployment();
        // Noise-free vector straight from the expected matrix.
        let truth = t.expected_fingerprint_matrix(0.0);
        let mut hits = 0;
        let mut total_err = 0.0;
        let total = 24;
        for j in (0..96).step_by(4) {
            let y = truth.col(j);
            let est = loc.localize(&y).unwrap();
            if est.grid == j {
                hits += 1;
            }
            total_err += d.location(j).distance(d.location(est.grid));
        }
        // Occasional flips between cells with near-identical signatures
        // are expected (mirror positions share the same direct-path
        // obstruction); the distance metric is what matters.
        assert!(hits >= total / 2, "clean localization hits {hits}/{total}");
        let mean_err = total_err / total as f64;
        assert!(mean_err < 1.2, "clean mean error {mean_err} m");
    }

    #[test]
    fn localizes_noisy_measurements_nearby() {
        // Average over several deployments: single fields can be locally
        // degenerate (weak multipath signature over part of the room).
        let mut total_err = 0.0;
        let mut count = 0;
        for seed in [12u64, 17, 18] {
            let (t, loc) = office_localizer(seed);
            let d = t.deployment();
            for j in (0..96).step_by(3) {
                let y = t.online_measurement(j, 0.0, 1000 + j as u64);
                let est = loc.localize(&y).unwrap();
                total_err += d.location(j).distance(d.location(est.grid));
                count += 1;
            }
        }
        let mean_err = total_err / count as f64;
        assert!(
            mean_err < 2.2,
            "mean day-0 localization error {mean_err} m too large"
        );
    }

    #[test]
    fn stale_fingerprints_degrade_accuracy() {
        // The motivating failure (Fig. 21's "OMP w/o rec."): matching
        // day-45 measurements against day-0 fingerprints is worse than
        // matching against day-45 fingerprints. A single seed can flip
        // (the degradation is stochastic), so average over several.
        let mut err_stale = 0.0;
        let mut err_fresh = 0.0;
        let mut count = 0;
        for seed in [13u64, 14, 15, 16] {
            let t = Testbed::new(Environment::office(), seed);
            let d = t.deployment();
            let stale = Localizer::new(
                FingerprintMatrix::survey(&t, 0.0, 20),
                LocalizerConfig::default(),
            );
            let fresh = Localizer::new(
                FingerprintMatrix::survey(&t, 45.0, 20),
                LocalizerConfig::default(),
            );
            for j in (0..96).step_by(3) {
                let y = t.online_measurement(j, 45.0, 50 + j as u64);
                err_stale += d
                    .location(j)
                    .distance(d.location(stale.localize(&y).unwrap().grid));
                err_fresh += d
                    .location(j)
                    .distance(d.location(fresh.localize(&y).unwrap().grid));
                count += 1;
            }
        }
        err_stale /= count as f64;
        err_fresh /= count as f64;
        assert!(
            err_stale > err_fresh,
            "stale ({err_stale} m) must be worse than fresh ({err_fresh} m)"
        );
    }

    #[test]
    fn wrong_measurement_length_rejected() {
        let (_, loc) = office_localizer(14);
        assert!(loc.localize(&[0.0; 5]).is_err());
        assert!(loc.localize_unprepared(&[0.0; 5]).is_err());
        assert!(loc.localize_batch(&[vec![0.0; 5]]).is_err());
    }

    #[test]
    fn centering_improves_over_raw_on_noisy_data() {
        let t = Testbed::new(Environment::office(), 15);
        let d = t.deployment();
        let fp = FingerprintMatrix::survey(&t, 0.0, 20);
        let centered = Localizer::new(fp.clone(), LocalizerConfig::default());
        let raw = Localizer::new(
            fp,
            LocalizerConfig {
                center: false,
                ..LocalizerConfig::default()
            },
        );
        let mut err_c = 0.0;
        let mut err_r = 0.0;
        for j in (0..96).step_by(5) {
            let y = t.online_measurement(j, 0.0, 900 + j as u64);
            err_c += d
                .location(j)
                .distance(d.location(centered.localize(&y).unwrap().grid));
            err_r += d
                .location(j)
                .distance(d.location(raw.localize(&y).unwrap().grid));
        }
        assert!(
            err_c <= err_r,
            "centred matching ({err_c}) should not lose to raw ({err_r})"
        );
    }

    #[test]
    fn prepared_path_matches_unprepared_oracle() {
        // Element-for-element: prepared single, prepared batch, and
        // the unprepared oracle agree exactly on live testbed queries.
        let (t, loc) = office_localizer(19);
        let queries: Vec<Vec<f64>> = (0..96)
            .map(|j| t.online_measurement(j, 0.0, 400 + j as u64))
            .collect();
        let batch = loc.localize_batch(&queries).unwrap();
        assert_eq!(batch.len(), queries.len());
        let mut scratch = QueryScratch::new();
        for (y, b) in queries.iter().zip(&batch) {
            let oracle = loc.localize_unprepared(y).unwrap();
            let single = loc.localize_with_scratch(y, &mut scratch).unwrap();
            assert_eq!(&oracle, b);
            assert_eq!(&oracle, &single);
            assert!(b.residual_sq.to_bits() == oracle.residual_sq.to_bits());
        }
    }

    #[test]
    fn batch_is_deterministic_across_calls() {
        let (t, loc) = office_localizer(20);
        let queries: Vec<Vec<f64>> = (0..150)
            .map(|j| t.online_measurement(j % 96, 0.0, 700 + j as u64))
            .collect();
        let a = loc.localize_batch(&queries).unwrap();
        let b = loc.localize_batch(&queries).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn accessors() {
        let (_, loc) = office_localizer(16);
        assert_eq!(loc.fingerprint().num_links(), 8);
        assert_eq!(loc.config().max_atoms, 1);
        assert_eq!(loc.prepared().dictionary().shape(), (8, 96));
    }
}
