//! Adjacent-link similarity: the Toeplitz matrix `H` (Eq. 17) and the
//! ALS statistic (Eq. 6).
//!
//! `H = Toeplitz(-1, 1, 0)_{M x M}` computes first differences down the
//! link axis of `X_D`: `(H X_D)(i, u) = X_D(i, u) - X_D(i-1, u)` for
//! `i >= 1`. Small values mean adjacent links see similar RSS at the
//! same relative locations (Obs. 3), which constraint 2 exploits.
//!
//! **Deviation from the printed paper:** Eq. (17)'s Toeplitz matrix has
//! first row `[1, 0, …, 0]`, which would make `‖H X_D‖²` penalise link
//! 1's *raw* RSS (pulling −60 dBm readings toward 0) rather than a
//! difference. We zero the first row so every row of `H X_D` is an
//! adjacent-link difference; this is the only reading under which the
//! constraint expresses Observation 3.

use iupdater_linalg::Matrix;

use crate::{CoreError, Result};

/// Builds the similarity matrix `H` (Eq. 17, first row zeroed — see the
/// module docs) for `m` links.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] if `m == 0`.
pub fn similarity_matrix(m: usize) -> Result<Matrix> {
    if m == 0 {
        return Err(CoreError::InvalidArgument("need at least one link"));
    }
    let mut h = Matrix::toeplitz_banded(m, 1.0, -1.0, 0.0);
    h[(0, 0)] = 0.0;
    Ok(h)
}

/// The ALS (adjacent-link similarity) statistics of Eq. (6): for every
/// `X_D` entry with `i >= 1`, the absolute difference to the same
/// relative location on the previous link, normalised by the maximum
/// such difference.
///
/// Returns `(M - 1) * per` values (the sample set whose CDF is Fig. 9).
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] if `xd` has fewer than 2 rows
/// or all adjacent-link differences are zero.
pub fn als_values(xd: &Matrix) -> Result<Vec<f64>> {
    if xd.rows() < 2 {
        return Err(CoreError::InvalidArgument("ALS needs at least 2 links"));
    }
    let mut diffs = Vec::with_capacity((xd.rows() - 1) * xd.cols());
    for i in 1..xd.rows() {
        for u in 0..xd.cols() {
            diffs.push((xd[(i, u)] - xd[(i - 1, u)]).abs());
        }
    }
    let max = diffs.iter().cloned().fold(0.0_f64, f64::max);
    if max <= 0.0 {
        return Err(CoreError::InvalidArgument(
            "ALS normaliser is zero (identical adjacent links)",
        ));
    }
    Ok(diffs.into_iter().map(|d| d / max).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_matches_eq17_with_zeroed_first_row() {
        let h = similarity_matrix(4).unwrap();
        let expected = Matrix::from_rows(&[
            &[0.0, 0.0, 0.0, 0.0],
            &[-1.0, 1.0, 0.0, 0.0],
            &[0.0, -1.0, 1.0, 0.0],
            &[0.0, 0.0, -1.0, 1.0],
        ]);
        assert_eq!(h, expected);
    }

    #[test]
    fn h_xd_computes_adjacent_differences() {
        let xd = Matrix::from_rows(&[&[-60.0, -62.0], &[-61.0, -64.0], &[-59.0, -66.0]]);
        let h = similarity_matrix(3).unwrap();
        let prod = h.matmul(&xd).unwrap();
        // Row 0 carries no raw-value penalty.
        assert_eq!(prod[(0, 0)], 0.0);
        // Row i>0: difference to the previous link.
        assert_eq!(prod[(1, 0)], -61.0 - -60.0);
        assert_eq!(prod[(2, 1)], -66.0 - -64.0);
    }

    #[test]
    fn identical_links_annihilated() {
        let xd = Matrix::from_fn(4, 5, |_, u| -(60.0 + u as f64));
        let h = similarity_matrix(4).unwrap();
        let prod = h.matmul(&xd).unwrap();
        assert!(prod.max_abs() < 1e-12);
    }

    #[test]
    fn als_normalised_to_unit_max() {
        let xd = Matrix::from_rows(&[&[-60.0, -62.0], &[-61.0, -66.0]]);
        let vals = als_values(&xd).unwrap();
        assert_eq!(vals.len(), 2);
        let max = vals.iter().cloned().fold(0.0_f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        assert!(vals.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn als_similar_links_mostly_small() {
        // Links nearly identical except one outlier pair: most ALS values
        // should be far below the (outlier-driven) max.
        let mut xd = Matrix::from_fn(6, 10, |_, u| -(60.0 + u as f64));
        xd[(3, 4)] = -80.0;
        let vals = als_values(&xd).unwrap();
        let below_02 = vals.iter().filter(|&&v| v < 0.2).count();
        assert!(below_02 as f64 / vals.len() as f64 > 0.8);
    }

    #[test]
    fn als_rejects_degenerate() {
        assert!(als_values(&Matrix::zeros(1, 4)).is_err());
        assert!(als_values(&Matrix::from_fn(3, 4, |_, u| u as f64)).is_err());
    }
}
