//! Configuration for the updater (Algorithm 1 inputs) and the localizer.

/// How constraint-2 cross-column terms are handled during the per-column
/// closed-form updates of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CouplingMode {
    /// Exact block-coordinate descent: the linear cross terms coupling a
    /// column to its neighbours (through `X_D G`) and to adjacent links
    /// (through `H X_D`) are carried in the update. This is what the
    /// objective (Eq. 18) actually prescribes and is the default.
    #[default]
    Exact,
    /// The paper-literal Algorithm 1: the cross terms are dropped
    /// (`C4 = C5 = O` in line 21), so constraint 2 acts as a structured
    /// ridge on each column. Kept for the ablation benchmarks.
    PaperLiteral,
}

/// The order in which [`CouplingMode::Exact`]'s order-sensitive phase
/// 2 (cross terms + back-substitution) walks the systems of a sweep.
///
/// Phase 1 of every sweep — assembling and LU-factoring the normal
/// equations — is order-free and always parallel. Phase 2 is
/// order-sensitive only under Exact coupling, where constraint 2's
/// cross terms couple a column of `R` to its along-link neighbours
/// (through `X_D G`) and to the same cell on adjacent links (through
/// `H X_D`), and a row of `L` to its adjacent links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepOrder {
    /// The historical ascending Gauss–Seidel order: each update reads
    /// the partially updated factor. Sequential in Exact mode, and
    /// bit-identical to `solver::reference` (the golden parity tests
    /// assert it). The default.
    #[default]
    GaussSeidel,
    /// Red-black order: the (link, cell) grid is 2-coloured like a
    /// checkerboard (colour = `(link + cell) % 2`) and phase 2 runs as
    /// two parallel half-sweeps — all of one colour, then all of the
    /// other, each half reading the factor state from the start of its
    /// half-sweep. Every distance-1 interaction crosses colours, so it
    /// stays Gauss–Seidel-fresh; the weaker distance-2 continuity
    /// interactions inside a colour are handled Jacobi-style. The
    /// iteration *trajectory* therefore differs from the historical
    /// order — not worse, just different (`core/tests/
    /// exact_convergence.rs` proves both orders reach stationarity on
    /// the golden configs) — which is why this is opt-in. Results are
    /// deterministic and independent of the worker count.
    RedBlack,
}

/// How the constraint terms are scaled relative to the data-fit term.
///
/// The paper notes the three constraint values "may have large
/// differences and overshadow each other" and are "scaled to the same
/// order of magnitude", without giving the scheme.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ScalingMode {
    /// Balance each constraint against the data-fit term once, at the
    /// first iteration, by the ratio of their per-element magnitudes.
    Auto,
    /// Use the configured weights as-is.
    #[default]
    Fixed,
}

/// Configuration of the self-augmented RSVD updater (Algorithm 1).
#[derive(Debug, Clone, PartialEq)]
pub struct UpdaterConfig {
    /// Rank bound `r`. `None` = use the numerical rank of the prior
    /// fingerprint matrix (which the paper's Fig. 5 shows equals the link
    /// count `M`).
    pub rank: Option<usize>,
    /// Lagrange/ridge trade-off `λ` of Eq. (11).
    pub lambda: f64,
    /// Weight of the data-fit term `‖B ∘ (L Rᵀ) − X_B‖²`.
    pub weight_fit: f64,
    /// Weight of constraint 1 `‖L Rᵀ − X_R Z‖²`.
    pub weight_ref: f64,
    /// Weight of the continuity part of constraint 2 `‖X_D G‖²`.
    pub weight_continuity: f64,
    /// Weight of the similarity part of constraint 2 `‖H X_D‖²`.
    pub weight_similarity: f64,
    /// Iteration budget `t` of Algorithm 1.
    pub max_iter: usize,
    /// Relative objective-decrease threshold used as the stopping
    /// criterion (plays the role of `v_th`).
    pub tol: f64,
    /// Cross-term handling (see [`CouplingMode`]).
    pub coupling: CouplingMode,
    /// Phase-2 sweep order under Exact coupling (see [`SweepOrder`]).
    /// Ignored when no cross terms are active (constraint 2 off or
    /// paper-literal coupling), where sweeps are order-free.
    pub sweep_order: SweepOrder,
    /// Constraint scaling (see [`ScalingMode`]).
    pub scaling: ScalingMode,
    /// Whether constraint 1 (reference-correlation) participates.
    pub use_constraint1: bool,
    /// Whether constraint 2 (continuity + similarity) participates.
    pub use_constraint2: bool,
    /// Seed for the random initialisation of `L` (line 1 of Algorithm 1).
    pub seed: u64,
    /// Numerical-rank tolerance used when `rank` is `None` and for MIC
    /// extraction.
    pub rank_tol: f64,
}

impl Default for UpdaterConfig {
    fn default() -> Self {
        UpdaterConfig {
            rank: None,
            lambda: 1e-3,
            weight_fit: 1.0,
            weight_ref: 1.0,
            weight_continuity: 0.25,
            weight_similarity: 0.1,
            max_iter: 60,
            tol: 1e-6,
            coupling: CouplingMode::Exact,
            sweep_order: SweepOrder::GaussSeidel,
            scaling: ScalingMode::Fixed,
            use_constraint1: true,
            use_constraint2: true,
            seed: 0x1u64,
            rank_tol: 0.02,
        }
    }
}

impl UpdaterConfig {
    /// A configuration running only the basic RSVD of Eq. (11): no
    /// constraint 1, no constraint 2 (the "RSVD" bar of Fig. 16).
    pub fn basic_rsvd() -> Self {
        UpdaterConfig {
            use_constraint1: false,
            use_constraint2: false,
            ..UpdaterConfig::default()
        }
    }

    /// Basic RSVD plus constraint 1 only (the middle bar of Fig. 16).
    pub fn with_constraint1_only() -> Self {
        UpdaterConfig {
            use_constraint1: true,
            use_constraint2: false,
            ..UpdaterConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.lambda < 0.0 {
            return Err("lambda must be >= 0");
        }
        if self.weight_fit <= 0.0 {
            return Err("weight_fit must be > 0");
        }
        if self.weight_ref < 0.0 || self.weight_continuity < 0.0 || self.weight_similarity < 0.0 {
            return Err("constraint weights must be >= 0");
        }
        if self.max_iter == 0 {
            return Err("max_iter must be >= 1");
        }
        if self.tol <= 0.0 {
            return Err("tol must be > 0");
        }
        if self.rank_tol <= 0.0 || self.rank_tol >= 1.0 {
            return Err("rank_tol must be in (0, 1)");
        }
        if let Some(r) = self.rank {
            if r == 0 {
                return Err("rank must be >= 1 when given");
            }
        }
        Ok(())
    }
}

/// How the greedy localizer selects the next fingerprint column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AtomSelection {
    /// Minimise the residual under the binary location model of
    /// Eq. (26): `W ∈ {0,1}^N` forces unit coefficients, so the best
    /// atom is `argmin_j ‖r − x_j‖₂²`. This is the faithful reading of
    /// the paper's optimisation (27) and the default.
    #[default]
    BinaryResidual,
    /// Classic OMP atom selection: maximise the normalised correlation
    /// `|⟨r, x_j⟩| / ‖x_j‖` and fit coefficients by least squares.
    Correlation,
}

/// Configuration of the OMP localizer (Sec. V).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizerConfig {
    /// Residual threshold `ξ` of Eq. (27): matching stops once
    /// `‖X̂ Ŵ − y‖₂² < ξ` (in centred units).
    pub residual_threshold: f64,
    /// Maximum number of atoms (1 = single-target).
    pub max_atoms: usize,
    /// Subtract the per-link dictionary mean before matching. Raw RSS
    /// vectors share a large common negative level; centring makes the
    /// matching step discriminative.
    pub center: bool,
    /// Atom-selection rule (see [`AtomSelection`]).
    pub selection: AtomSelection,
}

impl Default for LocalizerConfig {
    fn default() -> Self {
        LocalizerConfig {
            residual_threshold: 1e-3,
            max_atoms: 1,
            center: true,
            selection: AtomSelection::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(UpdaterConfig::default().validate().is_ok());
    }

    #[test]
    fn presets_toggle_constraints() {
        let basic = UpdaterConfig::basic_rsvd();
        assert!(!basic.use_constraint1 && !basic.use_constraint2);
        let c1 = UpdaterConfig::with_constraint1_only();
        assert!(c1.use_constraint1 && !c1.use_constraint2);
        let full = UpdaterConfig::default();
        assert!(full.use_constraint1 && full.use_constraint2);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let bad = [
            UpdaterConfig {
                lambda: -1.0,
                ..UpdaterConfig::default()
            },
            UpdaterConfig {
                weight_fit: 0.0,
                ..UpdaterConfig::default()
            },
            UpdaterConfig {
                max_iter: 0,
                ..UpdaterConfig::default()
            },
            UpdaterConfig {
                rank: Some(0),
                ..UpdaterConfig::default()
            },
            UpdaterConfig {
                rank_tol: 1.5,
                ..UpdaterConfig::default()
            },
            UpdaterConfig {
                tol: 0.0,
                ..UpdaterConfig::default()
            },
            UpdaterConfig {
                weight_ref: -0.1,
                ..UpdaterConfig::default()
            },
        ];
        for (k, c) in bad.iter().enumerate() {
            assert!(c.validate().is_err(), "bad config {k} passed validation");
        }
    }

    #[test]
    fn coupling_default_is_exact() {
        assert_eq!(CouplingMode::default(), CouplingMode::Exact);
        assert_eq!(ScalingMode::default(), ScalingMode::Fixed);
        // The sweep order must stay Gauss–Seidel until the red-black
        // trajectory has earned a default flip (see SweepOrder docs).
        assert_eq!(SweepOrder::default(), SweepOrder::GaussSeidel);
    }

    #[test]
    fn localizer_defaults() {
        let c = LocalizerConfig::default();
        assert_eq!(c.max_atoms, 1);
        assert!(c.center);
    }
}
