//! Device-free target tracking: sequence-aware localization over a
//! stream of online measurements.
//!
//! Single-shot matching (Sec. V) treats every epoch independently; a
//! walking target, however, can only move to nearby cells between
//! epochs. This module adds a Viterbi decoder over the grid: emission
//! scores come from the (centred) fingerprint match quality, transition
//! scores penalise physically impossible jumps. This is the tracking
//! setting of the paper's comparison system RASS ("tracking
//! transceiver-free objects") built on top of iUpdater's reconstructed
//! database.

use iupdater_linalg::Matrix;
use iupdater_rfsim::Deployment;

use crate::fingerprint::FingerprintMatrix;
use crate::{CoreError, Result};

/// Tracker configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerConfig {
    /// Maximum plausible movement between consecutive epochs, metres.
    pub max_step_m: f64,
    /// Weight of the squared movement distance in the path cost
    /// (trade-off between trusting the fingerprint match and trusting
    /// motion continuity).
    pub motion_weight: f64,
    /// Subtract per-link dictionary means before matching (as in
    /// [`crate::localize::Localizer`]).
    pub center: bool,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            max_step_m: 2.5,
            motion_weight: 0.35,
            center: true,
        }
    }
}

/// A Viterbi tracker over the fingerprint grid.
#[derive(Debug, Clone)]
pub struct Tracker {
    dictionary: Matrix,
    row_means: Vec<f64>,
    config: TrackerConfig,
    /// Pairwise squared distances between grid cells (metres²).
    dist_sq: Matrix,
}

impl Tracker {
    /// Builds a tracker from a fingerprint database and its deployment
    /// geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the deployment's
    /// location count differs from the fingerprint's.
    pub fn new(
        fingerprint: &FingerprintMatrix,
        deployment: &Deployment,
        config: TrackerConfig,
    ) -> Result<Self> {
        if deployment.num_locations() != fingerprint.num_locations() {
            return Err(CoreError::DimensionMismatch {
                context: "Tracker::new",
                expected: format!("{} locations", fingerprint.num_locations()),
                got: format!("{}", deployment.num_locations()),
            });
        }
        let x = fingerprint.matrix();
        let row_means: Vec<f64> = (0..x.rows())
            .map(|i| x.row(i).iter().sum::<f64>() / x.cols() as f64)
            .collect();
        let dictionary = if config.center {
            Matrix::from_fn(x.rows(), x.cols(), |i, j| x[(i, j)] - row_means[i])
        } else {
            x.clone()
        };
        let n = x.cols();
        let dist_sq = Matrix::from_fn(n, n, |a, b| {
            let d = deployment.distance_between(a, b);
            d * d
        });
        Ok(Tracker {
            dictionary,
            row_means,
            config,
            dist_sq,
        })
    }

    /// Emission cost of cell `j` for measurement `y` (centred squared
    /// distance in dB²).
    fn emission_cost(&self, y: &[f64], j: usize) -> f64 {
        (0..self.dictionary.rows())
            .map(|i| {
                let d = y[i] - self.dictionary[(i, j)];
                d * d
            })
            .sum()
    }

    /// Decodes the most likely cell sequence for a measurement stream
    /// (one epoch per row of `measurements`).
    ///
    /// # Errors
    ///
    /// - [`CoreError::InvalidArgument`] for an empty stream.
    /// - [`CoreError::DimensionMismatch`] if the measurement width does
    ///   not match the link count.
    pub fn track(&self, measurements: &Matrix) -> Result<Vec<usize>> {
        if measurements.rows() == 0 {
            return Err(CoreError::InvalidArgument("empty measurement stream"));
        }
        let m = self.dictionary.rows();
        let n = self.dictionary.cols();
        if measurements.cols() != m {
            return Err(CoreError::DimensionMismatch {
                context: "Tracker::track",
                expected: format!("{m} link measurements"),
                got: format!("{}", measurements.cols()),
            });
        }
        let centered = if self.config.center {
            measurements.map_indexed(|_, j, v| v - self.row_means[j])
        } else {
            measurements.clone()
        };

        let max_step_sq = self.config.max_step_m * self.config.max_step_m;
        // Viterbi forward pass.
        let mut cost: Vec<f64> = (0..n)
            .map(|j| self.emission_cost(centered.row(0), j))
            .collect();
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(measurements.rows());
        for epoch in 1..centered.rows() {
            let y = centered.row(epoch);
            let mut new_cost = vec![f64::INFINITY; n];
            let mut back_row = vec![0usize; n];
            for j in 0..n {
                let emit = self.emission_cost(y, j);
                let mut best = f64::INFINITY;
                let mut best_prev = 0usize;
                for (prev, &prev_cost) in cost.iter().enumerate() {
                    let step_sq = self.dist_sq[(prev, j)];
                    // Hard gate on impossible jumps, soft penalty below.
                    if step_sq > max_step_sq {
                        continue;
                    }
                    let c = prev_cost + self.config.motion_weight * step_sq;
                    if c < best {
                        best = c;
                        best_prev = prev;
                    }
                }
                if best.is_infinite() {
                    // No reachable predecessor (max_step too tight):
                    // allow a teleport with a stiff penalty so decoding
                    // always succeeds.
                    let (prev_idx, prev_cost) = cost
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.total_cmp(b.1))
                        // invariants: allow(panic-freedom) — this
                        // runs inside `for j in 0..n`, so `cost`
                        // (one entry per grid cell, length n) is
                        // non-empty.
                        .expect("non-empty");
                    best = prev_cost + self.config.motion_weight * max_step_sq * 4.0;
                    best_prev = prev_idx;
                }
                new_cost[j] = best + emit;
                back_row[j] = best_prev;
            }
            back.push(back_row);
            cost = new_cost;
        }

        // Backtrack.
        let mut path = Vec::with_capacity(measurements.rows());
        let mut cur = cost
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(j, _)| j)
            .ok_or(CoreError::InvalidArgument("tracking grid is empty"))?;
        path.push(cur);
        for row in back.iter().rev() {
            cur = row[cur];
            path.push(cur);
        }
        path.reverse();
        Ok(path)
    }

    /// The tracker configuration.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LocalizerConfig;
    use crate::localize::Localizer;
    use iupdater_linalg::stats::mean;
    use iupdater_rfsim::trajectory::Trajectory;
    use iupdater_rfsim::{Environment, Testbed};

    fn setup() -> (Testbed, FingerprintMatrix) {
        let t = Testbed::new(Environment::office(), 71);
        let fp = FingerprintMatrix::survey(&t, 0.0, 20);
        (t, fp)
    }

    fn per_epoch_errors(d: &Deployment, truth: &[usize], est: &[usize]) -> Vec<f64> {
        truth
            .iter()
            .zip(est)
            .map(|(&a, &b)| d.location(a).distance(d.location(b)))
            .collect()
    }

    #[test]
    fn tracking_beats_independent_matching() {
        let (t, fp) = setup();
        let d = t.deployment();
        let traj = Trajectory::random_walk(d, 40, 60, 5);
        let measurements = traj.measurements(&t, 0.0, 123);

        let tracker = Tracker::new(&fp, d, TrackerConfig::default()).unwrap();
        let tracked = tracker.track(&measurements).unwrap();
        let track_err = mean(&per_epoch_errors(d, traj.cells(), &tracked));

        let localizer = Localizer::new(fp.clone(), LocalizerConfig::default());
        let independent: Vec<usize> = (0..measurements.rows())
            .map(|k| localizer.localize(measurements.row(k)).unwrap().grid)
            .collect();
        let indep_err = mean(&per_epoch_errors(d, traj.cells(), &independent));

        assert!(
            track_err <= indep_err,
            "Viterbi tracking ({track_err:.2} m) must not lose to independent matching ({indep_err:.2} m)"
        );
        assert!(track_err < 1.5, "tracking error {track_err:.2} m");
    }

    #[test]
    fn path_is_physically_continuous() {
        let (t, fp) = setup();
        let d = t.deployment();
        let traj = Trajectory::random_walk(d, 10, 40, 9);
        let tracker = Tracker::new(&fp, d, TrackerConfig::default()).unwrap();
        let tracked = tracker.track(&traj.measurements(&t, 0.0, 321)).unwrap();
        assert_eq!(tracked.len(), traj.len());
        for w in tracked.windows(2) {
            let step = d.location(w[0]).distance(d.location(w[1]));
            assert!(
                step <= TrackerConfig::default().max_step_m + 1e-9,
                "decoded path jumps {step} m"
            );
        }
    }

    #[test]
    fn single_epoch_equals_nearest_match() {
        let (t, fp) = setup();
        let d = t.deployment();
        let tracker = Tracker::new(&fp, d, TrackerConfig::default()).unwrap();
        let y = t.online_measurement(25, 0.0, 55);
        let single = Matrix::from_rows(&[&y]);
        let path = tracker.track(&single).unwrap();
        let localizer = Localizer::new(fp, LocalizerConfig::default());
        assert_eq!(path, vec![localizer.localize(&y).unwrap().grid]);
    }

    #[test]
    fn input_validation() {
        let (t, fp) = setup();
        let d = t.deployment();
        let tracker = Tracker::new(&fp, d, TrackerConfig::default()).unwrap();
        assert!(tracker.track(&Matrix::zeros(0, 8)).is_err());
        assert!(tracker.track(&Matrix::zeros(1, 3)).is_err());
        // Mismatched deployment rejected at construction.
        let lib = Testbed::new(Environment::library(), 1);
        assert!(Tracker::new(&fp, lib.deployment(), TrackerConfig::default()).is_err());
    }

    #[test]
    fn tight_max_step_still_decodes() {
        let (t, fp) = setup();
        let d = t.deployment();
        let cfg = TrackerConfig {
            max_step_m: 0.1, // tighter than the grid step: forces the
            // teleport fallback
            ..TrackerConfig::default()
        };
        let tracker = Tracker::new(&fp, d, cfg).unwrap();
        let traj = Trajectory::from_cells(vec![0, 1, 2, 3]);
        let path = tracker.track(&traj.measurements(&t, 0.0, 77)).unwrap();
        assert_eq!(path.len(), 4);
    }
}
