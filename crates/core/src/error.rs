use std::fmt;

use iupdater_linalg::LinalgError;

/// Error type for the iUpdater core algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A matrix or vector argument had an unexpected shape.
    DimensionMismatch {
        /// What was being attempted.
        context: &'static str,
        /// Expected dimension(s), described.
        expected: String,
        /// What was received.
        got: String,
    },
    /// An argument was invalid.
    InvalidArgument(&'static str),
    /// The underlying linear algebra failed.
    Linalg(LinalgError),
    /// The iterative reconstruction did not reach its stopping criterion.
    NonConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Last objective value observed.
        objective: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimensionMismatch {
                context,
                expected,
                got,
            } => write!(f, "dimension mismatch in {context}: expected {expected}, got {got}"),
            CoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CoreError::NonConvergence {
                iterations,
                objective,
            } => write!(
                f,
                "reconstruction did not converge within {iterations} iterations (objective {objective:.3e})"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::DimensionMismatch {
            context: "update",
            expected: "8 rows".into(),
            got: "6 rows".into(),
        };
        assert!(e.to_string().contains("dimension mismatch in update"));
        assert!(CoreError::InvalidArgument("x")
            .to_string()
            .contains("invalid"));
    }

    #[test]
    fn linalg_error_wraps_with_source() {
        use std::error::Error;
        let e = CoreError::from(LinalgError::Singular);
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
