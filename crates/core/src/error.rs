use std::fmt;

use iupdater_linalg::LinalgError;

/// Error type for the iUpdater core algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A matrix or vector argument had an unexpected shape.
    DimensionMismatch {
        /// What was being attempted.
        context: &'static str,
        /// Expected dimension(s), described.
        expected: String,
        /// What was received.
        got: String,
    },
    /// An argument was invalid.
    InvalidArgument(&'static str),
    /// An underlying I/O operation failed. `std::io::Error` is neither
    /// `Clone` nor `PartialEq`, so the kind and rendered message are
    /// preserved instead of the error value itself.
    Io {
        /// The failed operation ("read" / "write").
        op: &'static str,
        /// The original [`std::io::ErrorKind`].
        kind: std::io::ErrorKind,
        /// The original error's rendered message.
        message: String,
    },
    /// The underlying linear algebra failed.
    Linalg(LinalgError),
    /// The iterative reconstruction did not reach its stopping criterion.
    NonConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Last objective value observed.
        objective: f64,
    },
    /// A fleet operation failed for one specific deployment; wraps the
    /// underlying error with the deployment's identity.
    Deployment {
        /// The deployment's registered name.
        name: String,
        /// The deployment's index within the service.
        id: usize,
        /// What went wrong.
        source: Box<CoreError>,
    },
}

impl CoreError {
    /// Wraps an [`std::io::Error`], preserving its kind and message.
    pub fn from_io(op: &'static str, e: &std::io::Error) -> Self {
        CoreError::Io {
            op,
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimensionMismatch {
                context,
                expected,
                got,
            } => write!(f, "dimension mismatch in {context}: expected {expected}, got {got}"),
            CoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            CoreError::Io { op, kind, message } => {
                write!(f, "{op} failed ({kind:?}): {message}")
            }
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CoreError::NonConvergence {
                iterations,
                objective,
            } => write!(
                f,
                "reconstruction did not converge within {iterations} iterations (objective {objective:.3e})"
            ),
            CoreError::Deployment { name, id, source } => {
                write!(f, "deployment '{name}' (id {id}): {source}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Linalg(e) => Some(e),
            CoreError::Deployment { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::DimensionMismatch {
            context: "update",
            expected: "8 rows".into(),
            got: "6 rows".into(),
        };
        assert!(e.to_string().contains("dimension mismatch in update"));
        assert!(CoreError::InvalidArgument("x")
            .to_string()
            .contains("invalid"));
    }

    #[test]
    fn linalg_error_wraps_with_source() {
        use std::error::Error;
        let e = CoreError::from(LinalgError::Singular);
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
    }

    #[test]
    fn io_preserves_kind_and_message() {
        let io = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "disk says no");
        let e = CoreError::from_io("write", &io);
        assert_eq!(
            e,
            CoreError::Io {
                op: "write",
                kind: std::io::ErrorKind::PermissionDenied,
                message: "disk says no".into(),
            }
        );
        assert!(e.to_string().contains("PermissionDenied"));
        assert!(e.to_string().contains("disk says no"));
    }

    #[test]
    fn deployment_wraps_with_identity_and_source() {
        use std::error::Error;
        let e = CoreError::Deployment {
            name: "office-3".into(),
            id: 3,
            source: Box::new(CoreError::InvalidArgument("bad day")),
        };
        let msg = e.to_string();
        assert!(msg.contains("office-3") && msg.contains("id 3") && msg.contains("bad day"));
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
