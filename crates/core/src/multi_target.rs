//! Multi-target localization: a natural extension of the paper's OMP
//! formulation (the location vector `W` of Eq. 26 is `{0,1}`-valued and
//! can carry `k > 1` ones), motivated by the paper's own related work on
//! multi-target device-free systems (E-HIPA, FitLoc).
//!
//! Because multiple bodies superpose their attenuations, the dictionary
//! model stays linear to first order: `y ≈ Σ_k x_{j_k}` in *centred*
//! coordinates. The greedy binary pursuit of [`crate::localize`] handles
//! this directly; this module adds the multi-estimate API, assignment
//! metrics and tests.

use crate::config::LocalizerConfig;
use crate::localize::Localizer;
use crate::Result;
use iupdater_rfsim::Deployment;

/// A multi-target estimate: one grid cell per detected target, in
/// greedy match order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiTargetEstimate {
    /// Estimated grid cells.
    pub grids: Vec<usize>,
}

impl Localizer {
    /// Estimates up to `max_targets` target locations from one online
    /// measurement. Uses the binary-residual greedy pursuit regardless
    /// of the configured selection rule (the `{0,1}` model is what makes
    /// superposed targets separable).
    ///
    /// # Errors
    ///
    /// Propagates [`Localizer::localize`] errors (shape mismatch,
    /// degenerate dictionary).
    pub fn localize_multi(&self, y: &[f64], max_targets: usize) -> Result<MultiTargetEstimate> {
        let cfg = LocalizerConfig {
            max_atoms: max_targets,
            selection: crate::config::AtomSelection::BinaryResidual,
            ..self.config().clone()
        };
        let tmp = Localizer::new(self.fingerprint().clone(), cfg);
        let est = tmp.localize(y)?;
        Ok(MultiTargetEstimate { grids: est.support })
    }
}

/// Greedy minimum-distance assignment between true and estimated cells;
/// returns per-target errors in metres (unmatched truths get the
/// distance to the farthest corner as a penalty).
pub fn assignment_errors(
    deployment: &Deployment,
    truth: &[usize],
    estimated: &[usize],
) -> Vec<f64> {
    let mut remaining: Vec<usize> = estimated.to_vec();
    let mut errors = Vec::with_capacity(truth.len());
    for &t in truth {
        if remaining.is_empty() {
            // Penalty: half the room diagonal (a miss).
            errors.push(6.0);
            continue;
        }
        let (idx, err) = remaining
            .iter()
            .enumerate()
            .map(|(k, &e)| (k, deployment.location(t).distance(deployment.location(e))))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            // invariants: allow(panic-freedom) — `remaining` is
            // non-empty here: the is_empty() branch above `continue`s.
            .expect("non-empty");
        errors.push(err);
        remaining.swap_remove(idx);
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FingerprintMatrix;
    use iupdater_linalg::stats::mean;
    use iupdater_rfsim::{Environment, Testbed};

    fn setup() -> (Testbed, Localizer) {
        let t = Testbed::new(Environment::office(), 61);
        let fp = FingerprintMatrix::survey(&t, 0.0, 20);
        (t, Localizer::new(fp, LocalizerConfig::default()))
    }

    #[test]
    fn two_well_separated_targets_recovered() {
        let t = Testbed::new(Environment::office(), 9);
        let fp = FingerprintMatrix::survey(&t, 0.0, 20);
        let loc = Localizer::new(fp, LocalizerConfig::default());
        let d = t.deployment();
        // Targets on different links, far apart.
        let truth = [d.location_index(1, 3), d.location_index(6, 9)];
        let mut errs = Vec::new();
        for salt in 0..6 {
            let y = t.online_measurement_multi(&truth, 0.0, 4000 + salt);
            let est = loc.localize_multi(&y, 2).unwrap();
            assert!(est.grids.len() <= 2);
            errs.extend(assignment_errors(d, &truth, &est.grids));
        }
        let m = mean(&errs);
        // Superposed targets violate the single-target dictionary model
        // slightly; room-scale (9 x 12 m) accuracy of ~3 m for two
        // simultaneous device-free targets is the expected regime.
        assert!(m < 3.0, "two-target mean assignment error {m} m");
    }

    #[test]
    fn single_target_multi_api_matches_single_api() {
        let (t, loc) = setup();
        let y = t.online_measurement(30, 0.0, 77);
        let single = loc.localize(&y).unwrap().grid;
        let multi = loc.localize_multi(&y, 1).unwrap();
        assert_eq!(multi.grids, vec![single]);
    }

    #[test]
    fn greedy_stops_when_residual_exhausted() {
        let (t, loc) = setup();
        // One target but allow up to 4: the pursuit should not hallucinate
        // many extra targets (the residual check stops it).
        let y = t.online_measurement(20, 0.0, 99);
        let est = loc.localize_multi(&y, 4).unwrap();
        assert!(!est.grids.is_empty());
        assert!(est.grids.len() <= 4);
        assert_eq!(
            est.grids[0] / 12,
            20 / 12,
            "first atom should find the right link row"
        );
    }

    #[test]
    fn assignment_metric_basics() {
        let t = Testbed::new(Environment::office(), 2);
        let d = t.deployment();
        // Perfect match.
        let e = assignment_errors(d, &[5, 50], &[50, 5]);
        assert_eq!(e, vec![0.0, 0.0]);
        // Miss penalised.
        let e = assignment_errors(d, &[5, 50], &[5]);
        assert_eq!(e[0], 0.0);
        assert!(e[1] > 0.0);
    }
}
