//! Random reference-location selection — the control arm of the paper's
//! Fig. 14 ("11 random locations"), demonstrating that the MIC locations
//! are the *right* few locations, not just few.

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// Draws `count` distinct random grid locations out of `n`.
///
/// # Panics
///
/// Panics if `count > n`.
pub fn random_locations(n: usize, count: usize, seed: u64) -> Vec<usize> {
    assert!(count <= n, "cannot select {count} of {n} locations");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all: Vec<usize> = (0..n).collect();
    all.shuffle(&mut rng);
    let mut picked: Vec<usize> = all.into_iter().take(count).collect();
    picked.sort_unstable();
    picked
}

/// Drops `drop` randomly chosen entries from a reference set (the
/// "7 of the 8 reference locations" arm of Fig. 14).
///
/// # Panics
///
/// Panics if `drop >= refs.len()`.
pub fn drop_references(refs: &[usize], drop: usize, seed: u64) -> Vec<usize> {
    assert!(drop < refs.len(), "cannot drop {drop} of {}", refs.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kept = refs.to_vec();
    for _ in 0..drop {
        let idx = rng.gen_range(0..kept.len());
        kept.remove(idx);
    }
    kept
}

/// Adds `extra` random locations not already in the reference set (the
/// "8 reference + 1 random" arm of Fig. 14).
///
/// # Panics
///
/// Panics if there are not enough non-reference locations left.
pub fn add_random(refs: &[usize], n: usize, extra: usize, seed: u64) -> Vec<usize> {
    let pool: Vec<usize> = (0..n).filter(|j| !refs.contains(j)).collect();
    assert!(extra <= pool.len(), "not enough non-reference locations");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = pool;
    pool.shuffle(&mut rng);
    let mut out = refs.to_vec();
    out.extend(pool.into_iter().take(extra));
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_locations_distinct_and_in_range() {
        let locs = random_locations(96, 11, 1);
        assert_eq!(locs.len(), 11);
        let mut dedup = locs.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 11);
        assert!(locs.iter().all(|&j| j < 96));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(random_locations(96, 8, 7), random_locations(96, 8, 7));
        assert_ne!(random_locations(96, 8, 7), random_locations(96, 8, 8));
    }

    #[test]
    fn drop_keeps_subset() {
        let refs = vec![3, 14, 27, 40, 55, 61, 72, 88];
        let kept = drop_references(&refs, 1, 5);
        assert_eq!(kept.len(), 7);
        assert!(kept.iter().all(|j| refs.contains(j)));
    }

    #[test]
    fn add_random_extends_without_duplicates() {
        let refs = vec![3, 14, 27];
        let ext = add_random(&refs, 20, 2, 9);
        assert_eq!(ext.len(), 5);
        let mut sorted = ext.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        for r in &refs {
            assert!(ext.contains(r));
        }
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn oversized_selection_panics() {
        let _ = random_locations(5, 6, 1);
    }
}
