//! RASS (Zhang et al., TPDS 2013): device-free localization by support
//! vector regression, the paper's state-of-the-art comparison system
//! (Figs. 23-24).
//!
//! RASS trains one regressor per coordinate axis on the fingerprint
//! database (feature = the M-link RSS vector of a location, label = the
//! location's metric coordinates) and predicts a continuous position for
//! an online measurement. The paper runs it in two arms: on the original
//! stale database ("RASS w/o rec.") and on the iUpdater-reconstructed
//! database ("RASS w/ rec.").

use iupdater_core::FingerprintMatrix;
use iupdater_linalg::Matrix;
use iupdater_rfsim::{Deployment, Point};

use crate::svr::{SvrModel, SvrParams};

/// A trained RASS localizer.
#[derive(Debug, Clone)]
pub struct Rass {
    model_x: SvrModel,
    model_y: SvrModel,
    /// Per-link feature means used for centring.
    feature_means: Vec<f64>,
}

impl Rass {
    /// Trains RASS from a fingerprint database and the deployment's grid
    /// coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the deployment's location count differs from the
    /// fingerprint's.
    pub fn train(
        fingerprint: &FingerprintMatrix,
        deployment: &Deployment,
        params: SvrParams,
    ) -> Self {
        assert_eq!(
            deployment.num_locations(),
            fingerprint.num_locations(),
            "deployment/fingerprint size mismatch"
        );
        let x = fingerprint.matrix();
        let m = x.rows();
        let n = x.cols();
        // Features: centred RSS columns (one sample per location).
        let feature_means: Vec<f64> = (0..m)
            .map(|i| x.row(i).iter().sum::<f64>() / n as f64)
            .collect();
        let features = Matrix::from_fn(n, m, |j, i| x[(i, j)] - feature_means[i]);
        let labels_x: Vec<f64> = (0..n).map(|j| deployment.location(j).x).collect();
        let labels_y: Vec<f64> = (0..n).map(|j| deployment.location(j).y).collect();
        let model_x = SvrModel::train(&features, &labels_x, params);
        let model_y = SvrModel::train(&features, &labels_y, params);
        Rass {
            model_x,
            model_y,
            feature_means,
        }
    }

    /// Predicts the target's continuous position from an online RSS
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the trained link count.
    pub fn predict(&self, y: &[f64]) -> Point {
        assert_eq!(
            y.len(),
            self.feature_means.len(),
            "measurement length mismatch"
        );
        let centered: Vec<f64> = y
            .iter()
            .zip(&self.feature_means)
            .map(|(v, m)| v - m)
            .collect();
        Point::new(
            self.model_x.predict(&centered),
            self.model_y.predict(&centered),
        )
    }

    /// Localization error in metres against a known true grid location.
    pub fn error_m(&self, y: &[f64], deployment: &Deployment, true_grid: usize) -> f64 {
        self.predict(y).distance(deployment.location(true_grid))
    }
}

/// Default SVR hyper-parameters tuned for RSS-vector features
/// (magnitudes of a few dB after centring).
pub fn default_rass_params() -> SvrParams {
    SvrParams {
        c: 50.0,
        epsilon: 0.1,
        kernel: crate::svr::Kernel::Rbf { gamma: 0.02 },
        max_passes: 25,
        tol: 1e-3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iupdater_rfsim::{Environment, Testbed};

    fn setup(seed: u64) -> (Testbed, Rass) {
        let t = Testbed::new(Environment::office(), seed);
        let fp = FingerprintMatrix::survey(&t, 0.0, 20);
        let rass = Rass::train(&fp, t.deployment(), default_rass_params());
        (t, rass)
    }

    #[test]
    fn predicts_inside_the_area() {
        let (t, rass) = setup(31);
        for j in (0..96).step_by(9) {
            let y = t.online_measurement(j, 0.0, 400 + j as u64);
            // SVR extrapolates mildly past the walls on noisy inputs;
            // allow a margin around the 9 m x 12 m office.
            let p = rass.predict(&y);
            assert!(p.x > -4.0 && p.x < 13.0, "x = {}", p.x);
            assert!(p.y > -4.0 && p.y < 16.0, "y = {}", p.y);
        }
    }

    #[test]
    fn mean_error_reasonable_on_fresh_data() {
        let (t, rass) = setup(32);
        let d = t.deployment();
        let mut err = 0.0;
        let mut cnt = 0;
        for j in (0..96).step_by(5) {
            let y = t.online_measurement(j, 0.0, 500 + j as u64);
            err += rass.error_m(&y, d, j);
            cnt += 1;
        }
        let mean = err / cnt as f64;
        assert!(mean < 3.0, "RASS day-0 mean error {mean} m");
    }

    #[test]
    fn stale_training_data_degrades() {
        let t = Testbed::new(Environment::office(), 33);
        let d = t.deployment();
        let stale = Rass::train(
            &FingerprintMatrix::survey(&t, 0.0, 20),
            d,
            default_rass_params(),
        );
        let fresh = Rass::train(
            &FingerprintMatrix::survey(&t, 45.0, 20),
            d,
            default_rass_params(),
        );
        let mut err_stale = 0.0;
        let mut err_fresh = 0.0;
        for j in (0..96).step_by(4) {
            let y = t.online_measurement(j, 45.0, 600 + j as u64);
            err_stale += stale.error_m(&y, d, j);
            err_fresh += fresh.error_m(&y, d, j);
        }
        assert!(
            err_stale > err_fresh,
            "stale RASS ({err_stale}) must be worse than fresh ({err_fresh})"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn measurement_length_checked() {
        let (_, rass) = setup(34);
        let _ = rass.predict(&[0.0; 3]);
    }
}
