//! ε-support-vector regression with an RBF kernel, trained by a
//! simplified SMO (sequential minimal optimisation) solver.
//!
//! This is the regression model RASS (Zhang et al., TPDS'13) uses to map
//! RSS vectors to target coordinates. Implemented from scratch: the dual
//! problem optimises pairs of coefficients `β_i = α_i − α_i*` under the
//! box constraint `|β_i| ≤ C` and the equality constraint `Σ β_i = 0`,
//! with the ε-insensitive loss.

use iupdater_linalg::Matrix;

/// Kernel choice for the SVR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Radial basis function `exp(-gamma ||a - b||²)`.
    Rbf {
        /// Bandwidth parameter.
        gamma: f64,
    },
    /// Plain inner product.
    Linear,
}

impl Kernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
        }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvrParams {
    /// Box constraint `C` (regularisation trade-off).
    pub c: f64,
    /// Width of the ε-insensitive tube.
    pub epsilon: f64,
    /// Kernel.
    pub kernel: Kernel,
    /// Maximum SMO passes over the data without progress before
    /// stopping.
    pub max_passes: usize,
    /// KKT violation tolerance.
    pub tol: f64,
}

impl Default for SvrParams {
    fn default() -> Self {
        SvrParams {
            c: 10.0,
            epsilon: 0.1,
            kernel: Kernel::Rbf { gamma: 0.05 },
            max_passes: 20,
            tol: 1e-3,
        }
    }
}

/// A trained ε-SVR model.
#[derive(Debug, Clone)]
pub struct SvrModel {
    params: SvrParams,
    /// Support vectors, one per row.
    support: Matrix,
    beta: Vec<f64>,
    bias: f64,
}

impl SvrModel {
    /// Trains on rows of `x` (one sample per row) against `y`.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != y.len()`, if there are no samples, or if
    /// parameters are non-positive.
    pub fn train(x: &Matrix, y: &[f64], params: SvrParams) -> Self {
        assert_eq!(x.rows(), y.len(), "sample/label count mismatch");
        assert!(x.rows() > 0, "need at least one sample");
        assert!(
            params.c > 0.0 && params.epsilon >= 0.0,
            "bad SVR parameters"
        );
        let n = x.rows();

        // Precompute the kernel matrix (n is small in our experiments);
        // samples are read directly as row views of `x`.
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = params.kernel.eval(x.row(i), x.row(j));
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }

        let mut beta = vec![0.0_f64; n];
        let mut bias = mean(y);
        // f_i cache: current predictions.
        let mut f: Vec<f64> = vec![bias; n];

        let mut passes = 0;
        while passes < params.max_passes {
            let mut changed = 0;
            for i in 0..n {
                // KKT check for sample i under epsilon-insensitive loss.
                let err_i = f[i] - y[i];
                let violates = (err_i > params.epsilon + params.tol && beta[i] > -params.c)
                    || (err_i < -params.epsilon - params.tol && beta[i] < params.c);
                if !violates {
                    continue;
                }
                // Pick j with the largest |err_i - err_j|.
                let mut j_best = usize::MAX;
                let mut gap_best = 0.0;
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let gap = (err_i - (f[j] - y[j])).abs();
                    if gap > gap_best {
                        gap_best = gap;
                        j_best = j;
                    }
                }
                if j_best == usize::MAX {
                    continue;
                }
                let j = j_best;
                let err_j = f[j] - y[j];
                let eta = k[(i, i)] + k[(j, j)] - 2.0 * k[(i, j)];
                if eta <= 1e-12 {
                    continue;
                }
                // Joint update preserving beta_i + beta_j.
                let s = beta[i] + beta[j];
                // Unconstrained optimum for beta_i along the constraint
                // line, using the epsilon-subgradient-free direction
                // (works because we re-check KKT each pass).
                let delta = (err_j - err_i) / eta;
                let mut bi_new = beta[i] + delta;
                // Box: |beta_i| <= C and |s - beta_i| <= C.
                let lo = (-params.c).max(s - params.c);
                let hi = params.c.min(s + params.c);
                bi_new = bi_new.clamp(lo, hi);
                let bj_new = s - bi_new;
                let di = bi_new - beta[i];
                let dj = bj_new - beta[j];
                if di.abs() < 1e-12 && dj.abs() < 1e-12 {
                    continue;
                }
                beta[i] = bi_new;
                beta[j] = bj_new;
                for t in 0..n {
                    f[t] += di * k[(i, t)] + dj * k[(j, t)];
                }
                // Bias: set so the average error of in-box points is 0.
                let mut acc = 0.0;
                let mut cnt = 0.0;
                for t in 0..n {
                    if beta[t].abs() < params.c - 1e-9 && beta[t].abs() > 1e-9 {
                        acc += y[t] - (f[t] - bias);
                        cnt += 1.0;
                    }
                }
                if cnt > 0.0 {
                    let new_bias = acc / cnt;
                    let db = new_bias - bias;
                    bias = new_bias;
                    for ft in f.iter_mut().take(n) {
                        *ft += db;
                    }
                }
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Keep only support vectors (row-selected without re-copying
        // each sample individually).
        let mut sv_rows = Vec::new();
        let mut sbeta = Vec::new();
        for (i, &bi) in beta.iter().enumerate().take(n) {
            if bi.abs() > 1e-9 {
                sv_rows.push(i);
                sbeta.push(bi);
            }
        }
        SvrModel {
            params,
            support: x.select_rows(&sv_rows),
            beta: sbeta,
            bias,
        }
    }

    /// Predicts the target value for a feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut v = self.bias;
        for (k, &b) in self.beta.iter().enumerate() {
            v += b * self.params.kernel.eval(self.support.row(k), x);
        }
        v
    }

    /// Number of support vectors retained.
    pub fn num_support_vectors(&self) -> usize {
        self.support.rows()
    }
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn fits_linear_function_with_linear_kernel() {
        // y = 2 x + 1 on [0, 1].
        let n = 30;
        let x = Matrix::from_fn(n, 1, |i, _| i as f64 / (n - 1) as f64);
        let y: Vec<f64> = (0..n)
            .map(|i| 2.0 * (i as f64 / (n - 1) as f64) + 1.0)
            .collect();
        let params = SvrParams {
            kernel: Kernel::Linear,
            epsilon: 0.01,
            c: 100.0,
            ..SvrParams::default()
        };
        let model = SvrModel::train(&x, &y, params);
        for (i, &yi) in y.iter().enumerate().take(n) {
            let pred = model.predict(x.row(i));
            assert!((pred - yi).abs() < 0.15, "sample {i}: pred {pred} vs {yi}");
        }
    }

    #[test]
    fn fits_smooth_nonlinear_function_with_rbf() {
        // y = sin(2 pi x) on [0, 1].
        let n = 40;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
        let x = Matrix::from_fn(n, 1, |i, _| xs[i]);
        let y: Vec<f64> = xs
            .iter()
            .map(|&v| (2.0 * std::f64::consts::PI * v).sin())
            .collect();
        let params = SvrParams {
            kernel: Kernel::Rbf { gamma: 20.0 },
            epsilon: 0.02,
            c: 50.0,
            max_passes: 40,
            ..SvrParams::default()
        };
        let model = SvrModel::train(&x, &y, params);
        let mut worst: f64 = 0.0;
        for (i, &yi) in y.iter().enumerate().take(n) {
            worst = worst.max((model.predict(x.row(i)) - yi).abs());
        }
        assert!(worst < 0.25, "worst RBF fit error {worst}");
    }

    #[test]
    fn epsilon_tube_sparsifies_support() {
        // With a wide tube, most points need no support vector.
        let n = 30;
        let x = Matrix::from_fn(n, 1, |i, _| i as f64 / (n - 1) as f64);
        let y: Vec<f64> = (0..n).map(|_| 1.0).collect(); // constant
        let params = SvrParams {
            kernel: Kernel::Linear,
            epsilon: 0.5,
            ..SvrParams::default()
        };
        let model = SvrModel::train(&x, &y, params);
        assert!(
            model.num_support_vectors() <= 4,
            "constant data in a wide tube needs few SVs, got {}",
            model.num_support_vectors()
        );
        assert!((model.predict(&[0.4]) - 1.0).abs() < 0.5 + 0.05);
    }

    #[test]
    fn robust_to_moderate_noise() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64 * 4.0).collect();
        let x = Matrix::from_fn(n, 1, |i, _| xs[i]);
        let y: Vec<f64> = xs
            .iter()
            .map(|&v| 3.0 * v + (rng.gen::<f64>() - 0.5) * 0.4)
            .collect();
        let params = SvrParams {
            kernel: Kernel::Linear,
            epsilon: 0.2,
            c: 20.0,
            ..SvrParams::default()
        };
        let model = SvrModel::train(&x, &y, params);
        // Check against the clean trend, not the noisy labels.
        for k in [5usize, 20, 35, 45] {
            let pred = model.predict(&[xs[k]]);
            assert!((pred - 3.0 * xs[k]).abs() < 0.6, "pred {pred} at {}", xs[k]);
        }
    }

    #[test]
    fn multidimensional_features() {
        // y = x0 - 2 x1.
        let mut rng = StdRng::seed_from_u64(10);
        let n = 60;
        let x = Matrix::from_fn(n, 2, |_, _| rng.gen::<f64>());
        let y: Vec<f64> = (0..n).map(|i| x[(i, 0)] - 2.0 * x[(i, 1)]).collect();
        let params = SvrParams {
            kernel: Kernel::Linear,
            epsilon: 0.02,
            c: 100.0,
            ..SvrParams::default()
        };
        let model = SvrModel::train(&x, &y, params);
        let mut worst: f64 = 0.0;
        for (i, &yi) in y.iter().enumerate().take(n) {
            worst = worst.max((model.predict(x.row(i)) - yi).abs());
        }
        assert!(worst < 0.2, "worst 2-D fit error {worst}");
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn label_count_checked() {
        let x = Matrix::zeros(3, 1);
        let _ = SvrModel::train(&x, &[1.0, 2.0], SvrParams::default());
    }

    #[test]
    fn rbf_kernel_bounds() {
        let k = Kernel::Rbf { gamma: 0.5 };
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
        assert!(k.eval(&[0.0], &[10.0]) < 1e-9);
    }
}
