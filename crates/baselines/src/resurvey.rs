//! The traditional full-database resurvey updater (Sec. VI-C's cost
//! baseline): a surveyor re-measures *every* grid location, typically
//! averaging ~50 samples per cell to beat the short-term noise.

use iupdater_core::FingerprintMatrix;
use iupdater_rfsim::labor::LaborModel;
use iupdater_rfsim::Testbed;

/// The traditional updater: re-survey all `N` locations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FullResurvey {
    /// Samples collected per location (the paper cites ~50 for
    /// traditional systems, 5 for iUpdater).
    pub samples_per_location: usize,
}

impl FullResurvey {
    /// The paper's traditional setting: 50 samples per cell.
    pub fn traditional() -> Self {
        FullResurvey {
            samples_per_location: 50,
        }
    }

    /// A reduced-cost traditional arm: 5 samples per cell (the paper's
    /// "92.1 % saving" comparison point, where traditional accuracy
    /// starts dropping).
    pub fn quick() -> Self {
        FullResurvey {
            samples_per_location: 5,
        }
    }

    /// Runs the full resurvey at day offset `day`.
    pub fn update(&self, testbed: &Testbed, day: f64) -> FingerprintMatrix {
        FingerprintMatrix::survey(testbed, day, self.samples_per_location)
    }

    /// Labor cost in seconds for a deployment with `locations` grid
    /// cells.
    pub fn labor_cost_s(&self, labor: &LaborModel, locations: usize) -> f64 {
        labor.survey_time_s(locations, self.samples_per_location)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iupdater_core::metrics::mean_reconstruction_error;
    use iupdater_rfsim::Environment;

    #[test]
    fn resurvey_tracks_drift() {
        let t = Testbed::new(Environment::office(), 51);
        let fresh = FullResurvey::traditional().update(&t, 45.0);
        let truth = t.expected_fingerprint_matrix(45.0);
        let err = mean_reconstruction_error(fresh.matrix(), &truth).unwrap();
        assert!(err < 1.0, "50-sample resurvey error {err} dB");
    }

    #[test]
    fn more_samples_cost_more_and_measure_better() {
        let t = Testbed::new(Environment::office(), 52);
        let labor = LaborModel::default();
        let trad = FullResurvey::traditional();
        let quick = FullResurvey::quick();
        assert!(
            trad.labor_cost_s(&labor, 94) > quick.labor_cost_s(&labor, 94),
            "50-sample survey must cost more"
        );
        let truth = t.expected_fingerprint_matrix(10.0);
        // Average over a few runs to avoid seed luck.
        let err_of = |s: FullResurvey, salt: u64| {
            let tb = Testbed::new(Environment::office(), 52 ^ salt);
            let truth2 = tb.expected_fingerprint_matrix(10.0);
            mean_reconstruction_error(s.update(&tb, 10.0).matrix(), &truth2).unwrap()
        };
        let _ = truth;
        let e_trad: f64 = (0..4).map(|k| err_of(trad, k)).sum::<f64>() / 4.0;
        let e_quick: f64 = (0..4).map(|k| err_of(quick, k)).sum::<f64>() / 4.0;
        assert!(
            e_trad < e_quick,
            "traditional ({e_trad} dB) should measure cleaner than quick ({e_quick} dB)"
        );
    }

    #[test]
    fn paper_cost_figures() {
        let labor = LaborModel::default();
        let trad = FullResurvey::traditional().labor_cost_s(&labor, 94);
        assert!(
            (trad / 60.0 - 46.9).abs() < 0.1,
            "traditional cost {trad} s"
        );
    }
}
