//! Baseline systems the iUpdater paper compares against.
//!
//! - [`svr`]: an ε-support-vector regressor with RBF kernel, trained by
//!   a from-scratch SMO solver — the model class behind RASS.
//! - [`rass`]: the RASS device-free tracker (Zhang et al., TPDS'13),
//!   which regresses RSS vectors to continuous coordinates with one SVR
//!   per axis (the paper's "state-of-the-art" comparison, Figs. 23-24).
//! - [`knn`]: (weighted) K-nearest-neighbour fingerprint matching, the
//!   classic alternative matcher mentioned in Sec. V.
//! - [`resurvey`]: the traditional full-database resurvey updater with
//!   its labor cost (the paper's cost baseline, Sec. VI-C).
//! - [`random_ref`]: random reference-location selection (the "11
//!   random locations" arm of Fig. 14).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod knn;
pub mod random_ref;
pub mod rass;
pub mod resurvey;
pub mod svr;

pub use knn::KnnLocalizer;
pub use rass::Rass;
pub use resurvey::FullResurvey;
pub use svr::{SvrModel, SvrParams};
