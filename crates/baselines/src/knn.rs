//! (Weighted) K-nearest-neighbour fingerprint matching — the classic
//! alternative matcher the paper mentions alongside SVM in Sec. V.

use iupdater_core::FingerprintMatrix;
use iupdater_rfsim::{Deployment, Point};

/// A KNN fingerprint localizer.
#[derive(Debug, Clone)]
pub struct KnnLocalizer {
    fingerprint: FingerprintMatrix,
    k: usize,
    weighted: bool,
}

impl KnnLocalizer {
    /// Builds a KNN localizer over a fingerprint database.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(fingerprint: FingerprintMatrix, k: usize, weighted: bool) -> Self {
        assert!(k > 0, "k must be >= 1");
        KnnLocalizer {
            fingerprint,
            k,
            weighted,
        }
    }

    /// Returns the indices and distances of the `k` nearest fingerprint
    /// columns to `y` (Euclidean in RSS space), nearest first.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the link count.
    pub fn neighbors(&self, y: &[f64]) -> Vec<(usize, f64)> {
        let x = self.fingerprint.matrix();
        assert_eq!(y.len(), x.rows(), "measurement length mismatch");
        let mut dists: Vec<(usize, f64)> = (0..x.cols())
            .map(|j| {
                let d: f64 = (0..x.rows())
                    .map(|i| (x[(i, j)] - y[i]).powi(2))
                    .sum::<f64>()
                    .sqrt();
                (j, d)
            })
            .collect();
        dists.sort_by(|a, b| a.1.total_cmp(&b.1));
        dists.truncate(self.k);
        dists
    }

    /// Hard-decision estimate: the single nearest grid cell.
    pub fn localize_grid(&self, y: &[f64]) -> usize {
        self.neighbors(y)[0].0
    }

    /// Continuous estimate: the (inverse-distance-weighted when enabled)
    /// centroid of the k nearest cells' coordinates.
    pub fn localize_point(&self, y: &[f64], deployment: &Deployment) -> Point {
        let nn = self.neighbors(y);
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut wsum = 0.0;
        for (j, d) in nn {
            let w = if self.weighted { 1.0 / (d + 1e-6) } else { 1.0 };
            let p = deployment.location(j);
            wx += w * p.x;
            wy += w * p.y;
            wsum += w;
        }
        Point::new(wx / wsum, wy / wsum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iupdater_core::FingerprintMatrix;
    use iupdater_linalg::Matrix;
    use iupdater_rfsim::{Environment, Testbed};

    #[test]
    fn exact_column_is_its_own_nearest_neighbor() {
        let m = Matrix::from_fn(3, 6, |i, j| -(50.0 + (i * 7 + j * 3) as f64 % 13.0));
        let fp = FingerprintMatrix::new(m.clone(), 2).unwrap();
        let knn = KnnLocalizer::new(fp, 1, false);
        for j in 0..6 {
            assert_eq!(knn.localize_grid(&m.col(j)), j);
        }
    }

    #[test]
    fn neighbors_sorted_by_distance() {
        let t = Testbed::new(Environment::office(), 41);
        let fp = FingerprintMatrix::survey(&t, 0.0, 10);
        let knn = KnnLocalizer::new(fp, 5, true);
        let y = t.online_measurement(20, 0.0, 3);
        let nn = knn.neighbors(&y);
        assert_eq!(nn.len(), 5);
        for w in nn.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn weighted_centroid_near_nearest_cell() {
        let t = Testbed::new(Environment::office(), 42);
        let d = t.deployment();
        let fp = FingerprintMatrix::survey(&t, 0.0, 10);
        let knn = KnnLocalizer::new(fp, 3, true);
        let truth = t.expected_fingerprint_matrix(0.0);
        let y = truth.col(30);
        let p = knn.localize_point(&y, d);
        let err = p.distance(d.location(30));
        // k = 3 centroid averaging can pull up to a couple of grid steps
        // away when a mirror cell sneaks into the top 3.
        assert!(err < 2.5, "weighted-KNN clean error {err} m");
    }

    #[test]
    fn knn_accuracy_reasonable_on_noisy_data() {
        let t = Testbed::new(Environment::office(), 43);
        let d = t.deployment();
        let fp = FingerprintMatrix::survey(&t, 0.0, 20);
        let knn = KnnLocalizer::new(fp, 3, true);
        let mut err = 0.0;
        let mut cnt = 0;
        for j in (0..96).step_by(6) {
            let y = t.online_measurement(j, 0.0, 700 + j as u64);
            err += knn.localize_point(&y, d).distance(d.location(j));
            cnt += 1;
        }
        let mean = err / cnt as f64;
        assert!(mean < 2.5, "KNN mean error {mean} m");
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_rejected() {
        let fp = FingerprintMatrix::new(Matrix::zeros(2, 4), 2).unwrap();
        let _ = KnnLocalizer::new(fp, 0, false);
    }
}
