//! Fig. 15: mean reconstruction error for the four reference-set arms
//! of Fig. 14, tracked across the five update timestamps.

use crate::report::{FigureResult, Series};
use crate::scenario::{Scenario, TIMESTAMPS};
use iupdater_baselines::random_ref::{add_random, drop_references, random_locations};
use iupdater_core::metrics::mean_reconstruction_error;

/// Regenerates Fig. 15.
pub fn run() -> FigureResult {
    let s = Scenario::office();
    let refs = s.updater().reference_locations().to_vec();
    let n = s.prior().num_locations();
    let arms: Vec<(String, Vec<usize>)> = vec![
        ("7 reference locations".into(), drop_references(&refs, 1, 7)),
        ("8 reference locations (iUpdater)".into(), refs.clone()),
        (
            "(8 reference + 1 random) locations".into(),
            add_random(&refs, n, 1, 11),
        ),
        ("11 random locations".into(), random_locations(n, 11, 13)),
    ];

    let mut fig = FigureResult::new(
        "fig15",
        "Reconstruction error vs reference sets across timestamps",
        "timestamp",
        "reconstruction error [dB]",
    );
    fig.x_labels = TIMESTAMPS
        .iter()
        .map(|&(l, _)| format!("{l} later"))
        .collect();
    for (label, locations) in &arms {
        let ys: Vec<f64> = TIMESTAMPS
            .iter()
            .map(|&(_, day)| {
                let rec = s.reconstruct_with_references(locations, day);
                mean_reconstruction_error(rec.matrix(), &s.ground_truth(day)).expect("shapes")
            })
            .collect();
        fig.series.push(Series::from_ys(label.clone(), &ys));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_holds_on_average_across_time() {
        let fig = run();
        let avg = |label: &str| {
            let s = fig.series_by_label(label).expect("series");
            s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len() as f64
        };
        let eight = avg("8 reference locations (iUpdater)");
        let seven = avg("7 reference locations");
        let random11 = avg("11 random locations");
        assert!(
            seven > eight,
            "7 refs ({seven}) must average worse than 8 ({eight})"
        );
        assert!(
            random11 > eight,
            "11 random ({random11}) must average worse than 8 MIC ({eight})"
        );
        // Errors stay bounded (the method "works well with time").
        for s in &fig.series {
            for p in &s.points {
                assert!(p.1 < 12.0, "{}: error {} dB out of scale", s.label, p.1);
            }
        }
    }

    #[test]
    fn five_timestamps_per_series() {
        let fig = run();
        assert_eq!(fig.series.len(), 4);
        for s in &fig.series {
            assert_eq!(s.points.len(), 5);
        }
    }
}
