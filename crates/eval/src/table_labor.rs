//! "Table L": the labor-cost accounting of Sec. VI-C. The paper has no
//! numbered tables; these are the headline cost numbers — iUpdater
//! surveys 8 locations x 5 samples in 55 s, the traditional system 94
//! locations x 50 samples in 46.9 min, a 97.9 % saving (92.1 % against
//! a 5-sample traditional survey).

use crate::report::{FigureResult, Series};
use iupdater_rfsim::labor::LaborModel;

/// Office parameters (the paper reports 94 effective grids).
pub const OFFICE_LOCATIONS: usize = 94;
/// iUpdater's reference-location count (the fingerprint rank = M).
pub const REFERENCE_LOCATIONS: usize = 8;

/// Regenerates the Sec. VI-C labor table.
pub fn run() -> FigureResult {
    let labor = LaborModel::default();
    let iupdater_s = labor.survey_time_s(REFERENCE_LOCATIONS, 5);
    let trad50_s = labor.survey_time_s(OFFICE_LOCATIONS, 50);
    let trad5_s = labor.survey_time_s(OFFICE_LOCATIONS, 5);

    let mut fig = FigureResult::new(
        "table-labor",
        "Update labor cost (Sec. VI-C)",
        "survey scheme",
        "time [s]",
    );
    fig.x_labels = vec![
        "iUpdater (8 loc x 5 samples)".into(),
        "traditional (94 loc x 50 samples)".into(),
        "traditional (94 loc x 5 samples)".into(),
    ];
    fig.series.push(Series::from_ys(
        "survey time [s]",
        &[iupdater_s, trad50_s, trad5_s],
    ));
    fig.notes.push(format!(
        "iUpdater: {iupdater_s:.0} s (paper: 55 s); traditional: {:.1} min (paper: 46.9 min)",
        trad50_s / 60.0
    ));
    fig.notes.push(format!(
        "saving vs 50-sample traditional: {:.1} % (paper: 97.9 %)",
        (1.0 - iupdater_s / trad50_s) * 100.0
    ));
    fig.notes.push(format!(
        "saving vs 5-sample traditional: {:.1} % (paper: 92.1 %)",
        (1.0 - iupdater_s / trad5_s) * 100.0
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_numbers_exactly() {
        let labor = LaborModel::default();
        let iu = labor.survey_time_s(REFERENCE_LOCATIONS, 5);
        let trad = labor.survey_time_s(OFFICE_LOCATIONS, 50);
        let trad5 = labor.survey_time_s(OFFICE_LOCATIONS, 5);
        assert!((iu - 55.0).abs() < 1e-9, "iUpdater cost {iu} s");
        assert!((trad / 60.0 - 46.9).abs() < 0.05, "traditional {trad} s");
        assert!(((1.0 - iu / trad) - 0.979).abs() < 2e-3, "97.9 % saving");
        assert!(((1.0 - iu / trad5) - 0.921).abs() < 2e-3, "92.1 % saving");
    }

    #[test]
    fn figure_carries_three_schemes() {
        let fig = run();
        assert_eq!(fig.series[0].points.len(), 3);
        assert_eq!(fig.x_labels.len(), 3);
        assert!(fig.notes.iter().any(|n| n.contains("97.9")));
    }
}
