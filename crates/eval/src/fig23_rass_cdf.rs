//! Fig. 23: localization-error CDFs at 45 days against the
//! state-of-the-art RASS tracker. Paper medians: iUpdater 1.1 m, RASS
//! with the reconstructed matrix 1.6 m, RASS with the stale matrix
//! 3.3 m — the reconstruction helps RASS by ~50 %, and iUpdater's OMP
//! matcher beats RASS's SVR regardless.

use crate::report::{FigureResult, Series};
use crate::scenario::Scenario;
use iupdater_linalg::stats::{median, Ecdf};

/// Evaluation day.
pub const EVAL_DAY: f64 = 45.0;
const SALT: u64 = 2301;

/// Runs the three arms and returns their error samples
/// `(iupdater, rass_with_rec, rass_without_rec)`.
pub fn arm_errors() -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let s = Scenario::office();
    let reconstructed = s.reconstruct(EVAL_DAY);
    (
        s.localization_errors(&reconstructed, EVAL_DAY, 1, SALT),
        s.rass_errors(&reconstructed, EVAL_DAY, 1, SALT),
        s.rass_errors(s.prior(), EVAL_DAY, 1, SALT),
    )
}

/// Regenerates Fig. 23.
pub fn run() -> FigureResult {
    let (iu, rass_rec, rass_stale) = arm_errors();
    let mut fig = FigureResult::new(
        "fig23",
        "Comparison with RASS at 45 days (CDF)",
        "localization error [m]",
        "CDF",
    );
    for (label, errs) in [
        ("iUpdater", &iu),
        ("RASS w/ rec.", &rass_rec),
        ("RASS w/o rec.", &rass_stale),
    ] {
        let ecdf = Ecdf::new(errs);
        fig.series.push(Series::from_points(label, ecdf.curve(60)));
        fig.notes
            .push(format!("{label}: median {:.2} m", median(errs)));
    }
    fig.notes.push("paper medians: 1.1 / 1.6 / 3.3 m".into());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let (iu, rass_rec, rass_stale) = arm_errors();
        let m_iu = median(&iu);
        let m_rec = median(&rass_rec);
        let m_stale = median(&rass_stale);
        // iUpdater <= RASS w/ rec < RASS w/o rec.
        assert!(
            m_iu <= m_rec * 1.05,
            "iUpdater ({m_iu} m) should lead RASS w/ rec ({m_rec} m)"
        );
        assert!(
            m_rec < m_stale,
            "reconstruction must help RASS: {m_rec} vs {m_stale} m"
        );
    }

    #[test]
    fn reconstruction_gain_for_rass_is_large() {
        let (_, rass_rec, rass_stale) = arm_errors();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let gain = 1.0 - mean(&rass_rec) / mean(&rass_stale);
        // Paper: ~50 % improvement for RASS from the reconstruction.
        assert!(
            gain > 0.1,
            "reconstructed database should clearly help RASS (gain {:.1} %)",
            gain * 100.0
        );
    }
}
