//! Fig. 20: fingerprint-update time cost as the deployment area grows
//! (2x to 10x the office edge length). Traditional resurvey cost grows
//! with the location count (~area, quadratic in the edge), while
//! iUpdater's grows only with the link count (~edge), so the saving
//! widens with scale.

use crate::report::{FigureResult, Series};
use iupdater_rfsim::labor::{AreaScaling, LaborModel};

/// Regenerates Fig. 20.
pub fn run() -> FigureResult {
    let labor = LaborModel::default();
    let scaling = AreaScaling::default();
    let ks: Vec<usize> = (2..=10).collect();

    let mut fig = FigureResult::new(
        "fig20",
        "Fingerprint update time cost vs area scale",
        "times the office edge length",
        "time cost [hours]",
    );
    let iupdater: Vec<(f64, f64)> = ks
        .iter()
        .map(|&k| (k as f64, labor.survey_time_hours(scaling.links_at(k), 5)))
        .collect();
    let traditional: Vec<(f64, f64)> = ks
        .iter()
        .map(|&k| {
            (
                k as f64,
                labor.survey_time_hours(scaling.locations_at(k), 50),
            )
        })
        .collect();
    fig.series.push(Series::from_points("iUpdater", iupdater));
    fig.series
        .push(Series::from_points("Existing systems", traditional));
    let saving_10 = 1.0
        - labor.survey_time_s(scaling.links_at(10), 5)
            / labor.survey_time_s(scaling.locations_at(10), 50);
    fig.notes.push(format!(
        "at 10x the edge length the saving reaches {:.2} %",
        saving_10 * 100.0
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traditional_cost_grows_quadratically_iupdater_linearly() {
        let fig = run();
        let tr = fig.series_by_label("Existing systems").unwrap();
        let iu = fig.series_by_label("iUpdater").unwrap();
        // Doubling k roughly quadruples traditional cost...
        let t2 = tr.points[0].1; // k = 2
        let t4 = tr.points[2].1; // k = 4
        assert!(
            (t4 / t2 - 4.0).abs() < 0.5,
            "traditional growth {}",
            t4 / t2
        );
        // ...but only doubles iUpdater's.
        let i2 = iu.points[0].1;
        let i4 = iu.points[2].1;
        assert!((i4 / i2 - 2.0).abs() < 0.4, "iUpdater growth {}", i4 / i2);
    }

    #[test]
    fn iupdater_always_cheaper_and_gap_widens() {
        let fig = run();
        let tr = fig.series_by_label("Existing systems").unwrap();
        let iu = fig.series_by_label("iUpdater").unwrap();
        let mut prev_gap = 0.0;
        for (t, i) in tr.points.iter().zip(&iu.points) {
            assert!(i.1 < t.1, "iUpdater must always be cheaper");
            let gap = t.1 - i.1;
            assert!(gap > prev_gap, "saving must widen with scale");
            prev_gap = gap;
        }
        // Fig. 20's scale: tens of hours at 10x.
        assert!(tr.points.last().unwrap().1 > 30.0);
        assert!(iu.points.last().unwrap().1 < 1.0);
    }
}
