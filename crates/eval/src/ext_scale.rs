//! Extension experiment (not in the paper): end-to-end behaviour as the
//! deployment area scales — the computational companion to Fig. 20's
//! labor argument. Fig. 20 shows the *human* cost scales gently; this
//! experiment confirms the *algorithmic* cost and the reconstruction
//! accuracy also behave at multiples of the office size.

use std::time::Instant;

use crate::report::{FigureResult, Series};
use iupdater_core::metrics::mean_reconstruction_error;
use iupdater_core::prelude::*;
use iupdater_rfsim::{Environment, EnvironmentKind, Testbed};

/// Builds an office-like environment at `k` times the edge length
/// (`k²` times the area, `k` times the links).
pub fn scaled_office(k: usize) -> Environment {
    let base = Environment::office();
    Environment {
        kind: EnvironmentKind::Custom,
        width_m: base.width_m * k as f64,
        height_m: base.height_m * k as f64,
        num_links: base.num_links * k,
        locations_per_link: base.locations_per_link * k,
        ..base
    }
}

/// One scale point: reconstruction error (dB) and wall time (ms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// Edge multiple.
    pub k: usize,
    /// Grid locations `N`.
    pub locations: usize,
    /// Mean reconstruction error at 45 days, dB.
    pub error_db: f64,
    /// Updater construction + one update, milliseconds.
    pub update_ms: f64,
}

/// Measures one scale point.
pub fn measure(k: usize) -> ScalePoint {
    let env = scaled_office(k);
    let locations = env.num_locations();
    let testbed = Testbed::new(env, 31_000 + k as u64);
    let day0 = FingerprintMatrix::survey(&testbed, 0.0, 10);
    let start = Instant::now();
    let updater = Updater::new(day0, UpdaterConfig::default()).expect("updater");
    let rec = updater
        .update_from_testbed(&testbed, 45.0, 5)
        .expect("update");
    let update_ms = start.elapsed().as_secs_f64() * 1e3;
    let truth = testbed.expected_fingerprint_matrix(45.0);
    let error_db = mean_reconstruction_error(rec.matrix(), &truth).expect("shapes");
    ScalePoint {
        k,
        locations,
        error_db,
        update_ms,
    }
}

/// Runs the scale sweep (k = 1, 2, 3).
pub fn run() -> FigureResult {
    let mut fig = FigureResult::new(
        "ext-scale",
        "Scaling extension: accuracy and compute vs area size",
        "times the office edge length",
        "error [dB] / time [ms]",
    );
    let points: Vec<ScalePoint> = [1usize, 2, 3].iter().map(|&k| measure(k)).collect();
    fig.series.push(Series::from_points(
        "reconstruction error [dB]",
        points.iter().map(|p| (p.k as f64, p.error_db)).collect(),
    ));
    fig.series.push(Series::from_points(
        "update wall time [ms]",
        points.iter().map(|p| (p.k as f64, p.update_ms)).collect(),
    ));
    for p in &points {
        fig.notes.push(format!(
            "k = {}: N = {} locations, error {:.2} dB, update {:.0} ms",
            p.k, p.locations, p.error_db, p.update_ms
        ));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_stays_bounded_as_area_grows() {
        let p1 = measure(1);
        let p2 = measure(2);
        assert_eq!(p2.locations, p1.locations * 4);
        // The method's accuracy must not fall apart with scale.
        assert!(
            p2.error_db < p1.error_db * 3.0 + 1.0,
            "error at 2x edge ({:.2} dB) blew up vs 1x ({:.2} dB)",
            p2.error_db,
            p1.error_db
        );
        assert!(p2.error_db < 5.0, "absolute error {:.2} dB", p2.error_db);
    }

    #[test]
    fn reference_count_scales_with_links_not_area() {
        let env = scaled_office(2);
        let links = env.num_links;
        let testbed = Testbed::new(env, 9);
        let day0 = FingerprintMatrix::survey(&testbed, 0.0, 5);
        let updater = Updater::new(day0, UpdaterConfig::default()).unwrap();
        // The labor scales with rank = M = 16 at 2x, not with N = 384.
        assert!(updater.reference_locations().len() <= links);
    }

    #[test]
    fn scaled_environment_consistent() {
        let env = scaled_office(3);
        assert_eq!(env.num_links, 24);
        assert_eq!(env.num_locations(), 24 * 36);
        assert!((env.grid_step_m() - Environment::office().grid_step_m()).abs() < 1e-12);
    }
}
