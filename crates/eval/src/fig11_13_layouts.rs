//! Figs. 11-13: the deployment layouts of the three environments
//! (office, library, hall) — rendered as ASCII maps of links, grid
//! cells and the MIC-selected reference locations.
//!
//! The paper presents these as floor-plan drawings; here the layout *is*
//! the data (`rfsim::Deployment`), so the figure renders the actual
//! geometry the experiments run on.

use std::fmt::Write as _;

use crate::report::{FigureResult, Series};
use crate::scenario::Scenario;
use iupdater_rfsim::Environment;

/// Renders one environment's deployment as an ASCII map. Each link is a
/// row of `.` cells; reference locations are `R`; the transmitter and
/// receiver ends are `T` and `X`.
pub fn render_layout(env: &Environment, reference_locations: &[usize]) -> String {
    let per = env.locations_per_link;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} — {:.0} m x {:.0} m, {} links x {} cells (grid {:.2} m)",
        env.kind,
        env.width_m,
        env.height_m,
        env.num_links,
        per,
        env.grid_step_m()
    );
    for i in 0..env.num_links {
        let mut row = String::from("T ");
        for u in 0..per {
            let j = i * per + u;
            row.push(if reference_locations.contains(&j) {
                'R'
            } else {
                '.'
            });
            row.push(' ');
        }
        row.push('X');
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Regenerates Figs. 11-13: one layout per environment, with the MIC
/// reference locations marked. The numeric series carry, per
/// environment, `(link count, location count, reference count)`.
pub fn run() -> FigureResult {
    let mut fig = FigureResult::new(
        "fig11-13",
        "Deployment layouts of the three environments",
        "environment",
        "counts",
    );
    for (kind, s) in Scenario::all_environments() {
        let env = s.testbed().environment().clone();
        let refs = s.updater().reference_locations();
        let layout = render_layout(&env, refs);
        for line in layout.lines() {
            fig.notes.push(line.to_string());
        }
        fig.notes.push(String::new());
        fig.series.push(Series::from_points(
            format!("{kind} (links, locations, references)"),
            vec![
                (0.0, env.num_links as f64),
                (1.0, env.num_locations() as f64),
                (2.0, refs.len() as f64),
            ],
        ));
    }
    fig.x_labels = vec!["links".into(), "locations".into(), "references".into()];
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_match_paper_counts() {
        let fig = run();
        assert_eq!(fig.series.len(), 3);
        let counts = |label_prefix: &str| {
            let s = fig
                .series
                .iter()
                .find(|s| s.label.starts_with(label_prefix))
                .expect("series");
            (
                s.points[0].1 as usize,
                s.points[1].1 as usize,
                s.points[2].1 as usize,
            )
        };
        assert_eq!(counts("office"), (8, 96, 8));
        let (lib_links, lib_locs, lib_refs) = counts("library");
        assert_eq!((lib_links, lib_locs), (6, 72));
        assert!(lib_refs <= 6);
        assert_eq!(counts("hall").0, 8);
        assert_eq!(counts("hall").1, 120);
    }

    #[test]
    fn render_marks_references_on_their_rows() {
        let env = Environment::office();
        let refs = vec![0usize, 13, 95];
        let text = render_layout(&env, &refs);
        let rows: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(rows.len(), 8);
        // Reference 0 -> link 0, cell 0; 13 -> link 1, cell 1; 95 -> link 7, cell 11.
        assert!(rows[0].starts_with("T R"));
        assert_eq!(rows[1].matches('R').count(), 1);
        assert!(rows[7].trim_end().ends_with("R X"));
        // Every row shows T ... X with `per` cells.
        for row in rows {
            assert!(row.starts_with('T') && row.trim_end().ends_with('X'));
            let cells = row.matches(['.', 'R']).count();
            assert_eq!(cells, 12);
        }
    }
}
