//! Ablations of the design choices DESIGN.md §5 calls out, with
//! accuracy comparisons (the timing side lives in
//! `iupdater-bench/benches/ablations.rs`).

use crate::report::{FigureResult, Series};
use crate::scenario::Scenario;
use iupdater_core::config::AtomSelection;
use iupdater_core::metrics::mean_reconstruction_error;
use iupdater_core::prelude::*;
use iupdater_core::{CouplingMode, ScalingMode};
use iupdater_linalg::stats::mean;

/// Evaluation day for all ablations.
pub const EVAL_DAY: f64 = 45.0;

/// Reconstruction error of an updater configuration at [`EVAL_DAY`].
fn recon_error(s: &Scenario, cfg: UpdaterConfig) -> f64 {
    let updater = Updater::new(s.prior().clone(), cfg).expect("updater");
    let rec = s.reconstruct_with(&updater, EVAL_DAY);
    mean_reconstruction_error(rec.matrix(), &s.ground_truth(EVAL_DAY)).expect("shapes")
}

/// Localization error with an atom-selection rule at [`EVAL_DAY`].
fn loc_error(s: &Scenario, selection: AtomSelection) -> f64 {
    let rec = s.reconstruct(EVAL_DAY);
    let localizer = Localizer::new(
        rec,
        LocalizerConfig {
            selection,
            ..LocalizerConfig::default()
        },
    );
    let d = s.testbed().deployment();
    let errs: Vec<f64> = (0..d.num_locations())
        .step_by(2)
        .map(|j| {
            let y = s.testbed().online_measurement(j, EVAL_DAY, 5000 + j as u64);
            let est = localizer.localize(&y).expect("localize");
            d.location(j).distance(d.location(est.grid))
        })
        .collect();
    mean(&errs)
}

/// Runs all accuracy ablations and reports them as one figure.
pub fn run() -> FigureResult {
    let s = Scenario::office();
    let mut fig = FigureResult::new(
        "ablations",
        "Design-choice ablations (reconstruction dB / localization m at 45 days)",
        "variant",
        "error",
    );

    let coupling_exact = recon_error(
        &s,
        UpdaterConfig {
            coupling: CouplingMode::Exact,
            ..UpdaterConfig::default()
        },
    );
    let coupling_paper = recon_error(
        &s,
        UpdaterConfig {
            coupling: CouplingMode::PaperLiteral,
            ..UpdaterConfig::default()
        },
    );
    let scaling_fixed = recon_error(
        &s,
        UpdaterConfig {
            scaling: ScalingMode::Fixed,
            ..UpdaterConfig::default()
        },
    );
    let scaling_auto = recon_error(
        &s,
        UpdaterConfig {
            scaling: ScalingMode::Auto,
            ..UpdaterConfig::default()
        },
    );
    let sel_binary = loc_error(&s, AtomSelection::BinaryResidual);
    let sel_corr = loc_error(&s, AtomSelection::Correlation);

    fig.x_labels = vec![
        "coupling: exact".into(),
        "coupling: paper-literal".into(),
        "scaling: fixed".into(),
        "scaling: auto".into(),
        "selection: binary-residual".into(),
        "selection: correlation".into(),
    ];
    fig.series.push(Series::from_ys(
        "error (dB for reconstruction rows, m for selection rows)",
        &[
            coupling_exact,
            coupling_paper,
            scaling_fixed,
            scaling_auto,
            sel_binary,
            sel_corr,
        ],
    ));
    fig.notes.push(format!(
        "coupling: exact {coupling_exact:.3} dB vs paper-literal {coupling_paper:.3} dB"
    ));
    fig.notes.push(format!(
        "scaling: fixed {scaling_fixed:.3} dB vs auto {scaling_auto:.3} dB"
    ));
    fig.notes.push(format!(
        "atom selection: binary-residual {sel_binary:.3} m vs correlation {sel_corr:.3} m"
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_coupling_not_worse_than_paper_literal() {
        let s = Scenario::office();
        let exact = recon_error(
            &s,
            UpdaterConfig {
                coupling: CouplingMode::Exact,
                ..UpdaterConfig::default()
            },
        );
        let paper = recon_error(
            &s,
            UpdaterConfig {
                coupling: CouplingMode::PaperLiteral,
                ..UpdaterConfig::default()
            },
        );
        assert!(
            exact <= paper * 1.05,
            "exact coupling ({exact:.3} dB) should not lose to paper-literal ({paper:.3} dB)"
        );
    }

    #[test]
    fn auto_scaling_stays_sane_with_clamps() {
        let s = Scenario::office();
        let fixed = recon_error(
            &s,
            UpdaterConfig {
                scaling: ScalingMode::Fixed,
                ..UpdaterConfig::default()
            },
        );
        let auto = recon_error(
            &s,
            UpdaterConfig {
                scaling: ScalingMode::Auto,
                ..UpdaterConfig::default()
            },
        );
        assert!(
            auto < fixed * 2.0,
            "clamped auto scaling ({auto:.3} dB) must stay near fixed ({fixed:.3} dB)"
        );
    }

    #[test]
    fn binary_residual_selection_beats_correlation() {
        let s = Scenario::office();
        let binary = loc_error(&s, AtomSelection::BinaryResidual);
        let corr = loc_error(&s, AtomSelection::Correlation);
        assert!(
            binary < corr,
            "binary-residual ({binary:.3} m) must beat correlation OMP ({corr:.3} m) \
             on near-parallel fingerprint columns"
        );
    }
}
