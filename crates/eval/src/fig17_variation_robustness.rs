//! Fig. 17: constraint 2 beats raw measurement. Reconstructing from 80 %
//! of the cells *with* the continuity/similarity constraint localizes
//! better than the 100 %-measured (ground-truth survey) matrix, because
//! the constraint removes short-term outliers; 50 % + constraint matches
//! the 100 % survey at half the labor.

use crate::report::{FigureResult, Series};
use crate::scenario::{Scenario, TIMESTAMPS, UPDATE_SAMPLES};
use iupdater_core::self_augmented::{Solver, SolverInputs};
use iupdater_core::{FingerprintMatrix, UpdaterConfig};
use iupdater_linalg::stats::mean;
use iupdater_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reconstructs from a random `fraction` of the surveyed cells with
/// constraint 2 enabled (no constraint 1: this figure isolates the
/// variation-robustness mechanism).
fn reconstruct_fraction(
    surveyed: &FingerprintMatrix,
    fraction: f64,
    seed: u64,
) -> FingerprintMatrix {
    let x = surveyed.matrix();
    let (m, n) = x.shape();
    let mut rng = StdRng::seed_from_u64(seed);
    let b = Matrix::from_fn(m, n, |_, _| {
        if rng.gen::<f64>() < fraction {
            1.0
        } else {
            0.0
        }
    });
    let x_b = b.hadamard(x).expect("shape");
    let cfg = UpdaterConfig {
        use_constraint1: false,
        use_constraint2: true,
        ..UpdaterConfig::default()
    };
    let inputs = SolverInputs {
        x_b,
        b,
        p: None,
        per: surveyed.locations_per_link(),
        warm_start: Some(x.clone()),
    };
    let report = Solver::new(inputs, cfg)
        .expect("solver")
        .solve()
        .expect("solve");
    surveyed
        .with_matrix(report.reconstruction())
        .expect("shape")
}

/// Regenerates Fig. 17: mean localization error of 80 % + C2, 50 % + C2
/// and the fully measured matrix, per timestamp.
pub fn run() -> FigureResult {
    let s = Scenario::office();
    let mut fig = FigureResult::new(
        "fig17",
        "Constraint 2 vs fully measured fingerprints (localization error)",
        "timestamp",
        "localization error [m]",
    );
    fig.x_labels = TIMESTAMPS
        .iter()
        .map(|&(l, _)| format!("{l} later"))
        .collect();
    let mut y80 = Vec::new();
    let mut y50 = Vec::new();
    let mut y100 = Vec::new();
    for (k, &(_, day)) in TIMESTAMPS.iter().enumerate() {
        // The fully measured survey at this day, collected with the
        // cheap 5-sample protocol the figure is about — this is the
        // survey whose residual noise/outliers constraint 2 removes.
        let surveyed = FingerprintMatrix::survey(s.testbed(), day, UPDATE_SAMPLES);
        let rec80 = reconstruct_fraction(&surveyed, 0.8, 100 + k as u64);
        let rec50 = reconstruct_fraction(&surveyed, 0.5, 200 + k as u64);
        let salt = 9000 + (k as u64) * 97;
        y80.push(mean(&s.localization_errors(&rec80, day, 2, salt)));
        y50.push(mean(&s.localization_errors(&rec50, day, 2, salt)));
        y100.push(mean(&s.localization_errors(&surveyed, day, 2, salt)));
    }
    fig.series
        .push(Series::from_ys("80% data + Constraint 2", &y80));
    fig.series
        .push(Series::from_ys("50% data + Constraint 2", &y50));
    fig.series
        .push(Series::from_ys("Measured (ground truth)", &y100));
    fig.notes.push(
        "paper: 80 % + constraint even beats 100 % measured; 50 % + constraint matches it".into(),
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_data_with_constraint_competitive_with_full_survey() {
        let fig = run();
        let avg = |label: &str| {
            let s = fig.series_by_label(label).expect("series");
            s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len() as f64
        };
        let m80 = avg("80% data + Constraint 2");
        let m50 = avg("50% data + Constraint 2");
        let m100 = avg("Measured (ground truth)");
        // 80 % + C2 must at least match the full survey (paper: beats it).
        assert!(
            m80 <= m100 * 1.1,
            "80 % + C2 ({m80} m) should be competitive with measured ({m100} m)"
        );
        // 50 % + C2 stays close (paper: "as good performance").
        assert!(
            m50 <= m100 * 1.35,
            "50 % + C2 ({m50} m) should stay close to measured ({m100} m)"
        );
    }

    #[test]
    fn errors_in_plausible_range() {
        let fig = run();
        for s in &fig.series {
            for p in &s.points {
                assert!((0.0..4.0).contains(&p.1), "{}: {} m", s.label, p.1);
            }
        }
    }
}
