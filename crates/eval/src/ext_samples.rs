//! Extension experiment (not in the paper's figures, but central to its
//! labor accounting): how many RSS samples per reference location does
//! the update really need?
//!
//! Sec. VI-C claims iUpdater gets away with 5 samples (vs the
//! traditional 50) because the *difference* structure it exploits is
//! stable. This sweep quantifies the accuracy-vs-samples curve, i.e.
//! where the labor model's `s'` can sit.

use crate::report::{FigureResult, Series};
use crate::scenario::Scenario;
use iupdater_core::metrics::mean_reconstruction_error;
use iupdater_rfsim::labor::LaborModel;

/// Evaluation day.
pub const EVAL_DAY: f64 = 45.0;

/// The sample counts swept.
pub const SAMPLE_COUNTS: [usize; 5] = [1, 3, 5, 10, 20];

/// Runs the sweep.
pub fn run() -> FigureResult {
    let s = Scenario::office();
    let truth = s.ground_truth(EVAL_DAY);
    let labor = LaborModel::default();
    let n_refs = s.updater().reference_locations().len();

    let mut fig = FigureResult::new(
        "ext-samples",
        "Samples per reference location vs reconstruction error",
        "samples per location",
        "error [dB] / labor [s]",
    );
    let mut errors = Vec::new();
    let mut costs = Vec::new();
    for &count in SAMPLE_COUNTS.iter() {
        let rec = s
            .updater()
            .update_from_testbed(s.testbed(), EVAL_DAY, count)
            .expect("update");
        let err = mean_reconstruction_error(rec.matrix(), &truth).expect("shapes");
        errors.push((count as f64, err));
        costs.push((count as f64, labor.survey_time_s(n_refs, count)));
        fig.notes.push(format!(
            "{count} samples: error {err:.3} dB, labor {:.0} s",
            labor.survey_time_s(n_refs, count)
        ));
    }
    fig.series
        .push(Series::from_points("reconstruction error [dB]", errors));
    fig.series
        .push(Series::from_points("update labor [s]", costs));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_samples_close_to_twenty() {
        // The paper's operating point: 5 samples lose little vs heavy
        // averaging, because the stable difference structure does the
        // denoising.
        let fig = run();
        let errs = &fig
            .series_by_label("reconstruction error [dB]")
            .unwrap()
            .points;
        let err_at = |count: f64| {
            errs.iter()
                .find(|p| p.0 == count)
                .map(|p| p.1)
                .expect("sample count present")
        };
        let e5 = err_at(5.0);
        let e20 = err_at(20.0);
        assert!(
            e5 < e20 + 0.5,
            "5 samples ({e5:.3} dB) should be within 0.5 dB of 20 samples ({e20:.3} dB)"
        );
        // And even 1 sample must remain usable (sub-2x of the 20-sample error + floor).
        let e1 = err_at(1.0);
        assert!(e1 < e20 * 3.0 + 1.0, "1 sample ({e1:.3} dB) unusable");
    }

    #[test]
    fn labor_grows_linearly_with_samples() {
        let fig = run();
        let costs = &fig.series_by_label("update labor [s]").unwrap().points;
        // Cost difference between consecutive counts is proportional to
        // the sample increment (the move time is constant).
        let cost_at = |count: f64| costs.iter().find(|p| p.0 == count).unwrap().1;
        let slope_a = (cost_at(10.0) - cost_at(5.0)) / 5.0;
        let slope_b = (cost_at(20.0) - cost_at(10.0)) / 10.0;
        assert!(
            (slope_a - slope_b).abs() < 1e-9,
            "labor must be linear in samples"
        );
    }
}
