//! Fig. 9: CDF of the adjacent-link-similarity (ALS) statistic — in the
//! paper, more than 80 % of values fall below a normalised difference
//! of 0.4 at every timestamp.

use crate::report::{FigureResult, Series};
use crate::scenario::{Scenario, INITIAL_SURVEY_SAMPLES, TIMESTAMPS};
use iupdater_core::{decrease, similarity, FingerprintMatrix};
use iupdater_linalg::stats::Ecdf;

/// Regenerates Fig. 9: ALS CDFs at the six timestamps.
pub fn run() -> FigureResult {
    let s = Scenario::office();
    let mut fig = FigureResult::new(
        "fig9",
        "Similarity between the largely-decrease RSS of adjacent links (ALS)",
        "difference between adjacent links [normalised]",
        "CDF [%]",
    );
    let mut stamps: Vec<(String, f64)> = vec![("original time".to_string(), 0.0)];
    stamps.extend(TIMESTAMPS.iter().map(|&(l, d)| (format!("{l} later"), d)));
    for (label, day) in stamps {
        let fp = FingerprintMatrix::survey(s.testbed(), day, INITIAL_SURVEY_SAMPLES);
        let xd = decrease::extract(fp.matrix(), fp.locations_per_link()).expect("X_D shape");
        let vals = similarity::als_values(&xd).expect("ALS values");
        let ecdf = Ecdf::new(&vals);
        fig.series.push(Series::from_points(
            label.clone(),
            ecdf.curve(50)
                .into_iter()
                .map(|(x, p)| (x, p * 100.0))
                .collect(),
        ));
        fig.notes.push(format!(
            "{label}: P(ALS < 0.4) = {:.1} %",
            ecdf.eval(0.4) * 100.0
        ));
    }
    fig.notes
        .push("paper: more than 80 % of ALS values below 0.4".into());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similarity_holds_at_every_timestamp() {
        let s = Scenario::office();
        let mut stamps = vec![0.0];
        stamps.extend(TIMESTAMPS.iter().map(|&(_, d)| d));
        for day in stamps {
            let fp = FingerprintMatrix::survey(s.testbed(), day, INITIAL_SURVEY_SAMPLES);
            let xd = decrease::extract(fp.matrix(), fp.locations_per_link()).unwrap();
            let vals = similarity::als_values(&xd).unwrap();
            let ecdf = Ecdf::new(&vals);
            let frac = ecdf.eval(0.4);
            // Paper reports >80 %; the simulated testbed lands between
            // 60 and 80 % (our per-link gain spread is not calibrated
            // out — the paper's footnote 3 notes the same effect). The
            // qualitative property (a clear majority of adjacent-link
            // differences are small) is what constraint 2 relies on.
            assert!(
                frac > 0.55,
                "day {day}: only {:.1} % of ALS values below 0.4 (paper: >80 %)",
                frac * 100.0
            );
        }
    }

    #[test]
    fn figure_shape() {
        let fig = run();
        assert_eq!(fig.series.len(), 6);
        for s in &fig.series {
            for p in &s.points {
                assert!((0.0..=1.0 + 1e-9).contains(&p.0), "normalised x axis");
            }
        }
    }
}
