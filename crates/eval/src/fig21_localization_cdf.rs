//! Fig. 21: localization-error CDFs at 45 days for three databases:
//! the fresh ground-truth survey (paper median 0.78 m), the iUpdater
//! reconstruction (1.1 m), and the stale original matrix ("OMP w/o
//! rec.", ~54 % worse than iUpdater).

use crate::report::{FigureResult, Series};
use crate::scenario::{Scenario, INITIAL_SURVEY_SAMPLES};
use iupdater_core::FingerprintMatrix;
use iupdater_linalg::stats::{median, Ecdf};

/// Evaluation day.
pub const EVAL_DAY: f64 = 45.0;
/// Probe-noise salt for reproducibility.
const SALT: u64 = 2101;

/// Runs the three arms and returns their error samples
/// `(groundtruth, iupdater, stale)`.
pub fn arm_errors() -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let s = Scenario::office();
    let fresh = FingerprintMatrix::survey(s.testbed(), EVAL_DAY, INITIAL_SURVEY_SAMPLES);
    let reconstructed = s.reconstruct(EVAL_DAY);
    let stale = s.prior().clone();
    (
        s.localization_errors(&fresh, EVAL_DAY, 1, SALT),
        s.localization_errors(&reconstructed, EVAL_DAY, 1, SALT),
        s.localization_errors(&stale, EVAL_DAY, 1, SALT),
    )
}

/// Regenerates Fig. 21.
pub fn run() -> FigureResult {
    let (gt, iu, stale) = arm_errors();
    let mut fig = FigureResult::new(
        "fig21",
        "Localization error CDFs at 45 days",
        "localization error [m]",
        "CDF",
    );
    for (label, errs) in [
        ("Groundtruth", &gt),
        ("iUpdater", &iu),
        ("OMP w/o rec.", &stale),
    ] {
        let ecdf = Ecdf::new(errs);
        fig.series.push(Series::from_points(label, ecdf.curve(60)));
        fig.notes
            .push(format!("{label}: median {:.2} m", median(errs)));
    }
    fig.notes
        .push("paper medians: 0.78 m / 1.1 m / (iUpdater ~54 % better than stale)".into());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let (gt, iu, stale) = arm_errors();
        let m_gt = median(&gt);
        let m_iu = median(&iu);
        let m_stale = median(&stale);
        // Ground truth is the best; iUpdater close behind; stale worst.
        assert!(
            m_iu <= m_stale,
            "iUpdater ({m_iu} m) must beat the stale matrix ({m_stale} m)"
        );
        assert!(
            m_gt <= m_iu * 1.35,
            "ground truth ({m_gt} m) should lead iUpdater ({m_iu} m)"
        );
        // Absolute scale: sub-2 m medians for GT and iUpdater, like the
        // paper's 0.78/1.1 m.
        assert!(m_gt < 2.0, "ground-truth median {m_gt} m");
        assert!(m_iu < 2.5, "iUpdater median {m_iu} m");
    }

    #[test]
    fn mean_improvement_is_substantial() {
        let (_, iu, stale) = arm_errors();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let gain = 1.0 - mean(&iu) / mean(&stale);
        // Paper: ~54 % improvement in the office. Demand a robust gain.
        assert!(
            gain > 0.15,
            "iUpdater should clearly improve on the stale matrix (gain {:.1} %)",
            gain * 100.0
        );
    }
}
