//! Result containers and formatting for the experiment harness.

use std::fmt::Write as _;

/// One plotted series: a label and `(x, y)` points. For categorical
/// x-axes (timestamps, methods) the x values are the category indices
/// and [`FigureResult::x_labels`] names them.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (e.g. `"8 reference locations (iUpdater)"`).
    pub label: String,
    /// The data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series from y values at integer x positions.
    pub fn from_ys(label: impl Into<String>, ys: &[f64]) -> Self {
        Series {
            label: label.into(),
            points: ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect(),
        }
    }

    /// Builds a series from `(x, y)` pairs.
    pub fn from_points(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The y value at the series' `i`-th point.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn y(&self, i: usize) -> f64 {
        self.points[i].1
    }
}

/// A regenerated figure or table.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureResult {
    /// Paper identifier (`"fig14"`, `"table-labor"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Axis descriptions, e.g. `("reconstruction error [dB]", "CDF")`.
    pub axes: (String, String),
    /// Optional category names for integer x positions.
    pub x_labels: Vec<String>,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form notes (medians, savings, paper-reported values).
    pub notes: Vec<String>,
}

impl FigureResult {
    /// Creates an empty result shell.
    pub fn new(id: &str, title: &str, x_axis: &str, y_axis: &str) -> Self {
        FigureResult {
            id: id.to_string(),
            title: title.to_string(),
            axes: (x_axis.to_string(), y_axis.to_string()),
            x_labels: Vec::new(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Finds a series by label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders a markdown report (a table of series values plus notes).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "x: {} | y: {}\n", self.axes.0, self.axes.1);
        if self.series.is_empty() {
            let _ = writeln!(out, "(no series)");
        } else {
            // Header.
            let _ = write!(out, "| x |");
            for s in &self.series {
                let _ = write!(out, " {} |", s.label);
            }
            let _ = writeln!(out);
            let _ = write!(out, "|---|");
            for _ in &self.series {
                let _ = write!(out, "---|");
            }
            let _ = writeln!(out);
            let rows = self
                .series
                .iter()
                .map(|s| s.points.len())
                .max()
                .unwrap_or(0);
            for r in 0..rows {
                let x_desc = self
                    .x_labels
                    .get(r)
                    .cloned()
                    .or_else(|| {
                        self.series
                            .first()
                            .and_then(|s| s.points.get(r))
                            .map(|p| format!("{:.3}", p.0))
                    })
                    .unwrap_or_else(|| r.to_string());
                let _ = write!(out, "| {x_desc} |");
                for s in &self.series {
                    match s.points.get(r) {
                        Some(&(_, y)) => {
                            let _ = write!(out, " {y:.3} |");
                        }
                        None => {
                            let _ = write!(out, " |");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out);
            for n in &self.notes {
                let _ = writeln!(out, "- {n}");
            }
        }
        out
    }

    /// Renders CSV: `series,x,y` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for &(x, y) in &s.points {
                let _ = writeln!(out, "{},{x},{y}", s.label.replace(',', ";"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureResult {
        let mut f = FigureResult::new("figX", "Test figure", "time", "error");
        f.series.push(Series::from_ys("a", &[1.0, 2.0]));
        f.series
            .push(Series::from_points("b", vec![(0.0, 3.0), (1.0, 4.0)]));
        f.x_labels = vec!["day 0".into(), "day 1".into()];
        f.notes.push("median 1.5".into());
        f
    }

    #[test]
    fn markdown_contains_everything() {
        let md = sample().to_markdown();
        assert!(md.contains("figX"));
        assert!(md.contains("| day 0 |"));
        assert!(md.contains("median 1.5"));
        assert!(md.contains("| a |") || md.contains(" a |"));
    }

    #[test]
    fn csv_row_count() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.starts_with("series,x,y"));
    }

    #[test]
    fn series_helpers() {
        let s = Series::from_ys("s", &[5.0, 6.0]);
        assert_eq!(s.y(1), 6.0);
        assert_eq!(s.points[1].0, 1.0);
        let f = sample();
        assert!(f.series_by_label("a").is_some());
        assert!(f.series_by_label("zzz").is_none());
    }

    #[test]
    fn empty_figure_renders() {
        let f = FigureResult::new("e", "Empty", "x", "y");
        assert!(f.to_markdown().contains("(no series)"));
        assert_eq!(f.to_csv(), "series,x,y\n");
    }
}
