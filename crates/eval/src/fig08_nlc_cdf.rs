//! Fig. 8: CDF of the neighbouring-location-continuity (NLC) statistic —
//! in the paper, over 90 % of values fall below a normalised difference
//! of 0.2 at every timestamp.

use crate::report::{FigureResult, Series};
use crate::scenario::{Scenario, INITIAL_SURVEY_SAMPLES, TIMESTAMPS};
use iupdater_core::{decrease, neighbors, FingerprintMatrix};
use iupdater_linalg::stats::Ecdf;

/// Regenerates Fig. 8: NLC CDFs at the six timestamps.
pub fn run() -> FigureResult {
    let s = Scenario::office();
    let mut fig = FigureResult::new(
        "fig8",
        "Continuity of largely-decrease RSS at neighbouring locations (NLC)",
        "difference between neighbor locations [normalised]",
        "CDF [%]",
    );
    let mut stamps: Vec<(String, f64)> = vec![("original time".to_string(), 0.0)];
    stamps.extend(TIMESTAMPS.iter().map(|&(l, d)| (format!("{l} later"), d)));
    for (label, day) in stamps {
        let fp = FingerprintMatrix::survey(s.testbed(), day, INITIAL_SURVEY_SAMPLES);
        let xd = decrease::extract(fp.matrix(), fp.locations_per_link()).expect("X_D shape");
        let vals = neighbors::nlc_values(&xd).expect("NLC values");
        let ecdf = Ecdf::new(&vals);
        fig.series.push(Series::from_points(
            label.clone(),
            ecdf.curve(50)
                .into_iter()
                .map(|(x, p)| (x, p * 100.0))
                .collect(),
        ));
        fig.notes.push(format!(
            "{label}: P(NLC < 0.2) = {:.1} %",
            ecdf.eval(0.2) * 100.0
        ));
    }
    fig.notes
        .push("paper: over 90 % of NLC values below 0.2".into());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuity_holds_at_every_timestamp() {
        let s = Scenario::office();
        let mut stamps = vec![0.0];
        stamps.extend(TIMESTAMPS.iter().map(|&(_, d)| d));
        for day in stamps {
            let fp = FingerprintMatrix::survey(s.testbed(), day, INITIAL_SURVEY_SAMPLES);
            let xd = decrease::extract(fp.matrix(), fp.locations_per_link()).unwrap();
            let vals = neighbors::nlc_values(&xd).unwrap();
            let ecdf = Ecdf::new(&vals);
            let frac = ecdf.eval(0.2);
            // Paper reports >90 %; the simulated testbed lands in the
            // high 80s — same qualitative continuity.
            assert!(
                frac > 0.80,
                "day {day}: only {:.1} % of NLC values below 0.2 (paper: >90 %)",
                frac * 100.0
            );
        }
    }

    #[test]
    fn figure_has_six_series() {
        let fig = run();
        assert_eq!(fig.series.len(), 6);
        for s in &fig.series {
            // CDF curves are monotone and end at 100 %.
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9);
            }
            assert!((s.points.last().unwrap().1 - 100.0).abs() < 1e-9);
        }
    }
}
