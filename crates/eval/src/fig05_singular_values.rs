//! Fig. 5: the fingerprint matrix is *approximately* low rank — the
//! first singular value carries most of the energy, but residual energy
//! remains in the other M-1 values at every timestamp.

use crate::report::{FigureResult, Series};
use crate::scenario::{Scenario, INITIAL_SURVEY_SAMPLES, TIMESTAMPS};
use iupdater_core::FingerprintMatrix;

/// Regenerates Fig. 5: normalised singular values of the six fingerprint
/// matrices collected over 3 months.
pub fn run() -> FigureResult {
    let s = Scenario::office();
    let mut fig = FigureResult::new(
        "fig5",
        "Normalised singular values of the fingerprint matrix",
        "singular value index",
        "value [normalised]",
    );

    let mut stamps: Vec<(String, f64)> = vec![("original time".to_string(), 0.0)];
    stamps.extend(TIMESTAMPS.iter().map(|&(l, d)| (format!("{l} later"), d)));
    for (label, day) in stamps {
        let fp = FingerprintMatrix::survey(s.testbed(), day, INITIAL_SURVEY_SAMPLES);
        let svd = fp.matrix().svd().expect("SVD of survey matrix");
        let normalised = svd.normalized_singular_values();
        fig.series.push(Series::from_points(
            label,
            normalised
                .iter()
                .enumerate()
                .map(|(i, &v)| ((i + 1) as f64, v))
                .collect(),
        ));
    }
    // Note the energy split the paper argues from.
    let fp0 = FingerprintMatrix::survey(s.testbed(), 0.0, INITIAL_SURVEY_SAMPLES);
    let svd0 = fp0.matrix().svd().expect("SVD");
    fig.notes.push(format!(
        "energy fraction of sigma_1: {:.3}; of first {} values: 1.000 — rank r = M = {} (approximately low rank)",
        svd0.energy_fraction(1),
        fp0.num_links(),
        fp0.num_links(),
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_observation_1() {
        let fig = run();
        assert_eq!(fig.series.len(), 6, "six timestamps");
        for s in &fig.series {
            assert_eq!(s.points.len(), 8, "M = 8 singular values");
            // sigma_1 dominates...
            assert!((s.points[0].1 - 1.0).abs() < 1e-12);
            assert!(s.points[1].1 < 0.35, "sigma_2/sigma_1 = {}", s.points[1].1);
            // ...but the tail is NOT negligible (approximately low rank,
            // not exactly): every remaining value is still nonzero.
            for p in &s.points[1..] {
                assert!(p.1 > 1e-4, "tail singular value vanished: {}", p.1);
            }
            // Sorted decreasing.
            for w in s.points.windows(2) {
                assert!(w[0].1 >= w[1].1 - 1e-12);
            }
        }
    }

    #[test]
    fn energy_mostly_in_first_value() {
        let s = Scenario::office();
        let svd = s.prior().matrix().svd().unwrap();
        let e1 = svd.energy_fraction(1);
        assert!(e1 > 0.80, "sigma_1 energy fraction {e1}");
        assert!(e1 < 0.999, "tail energy must remain (approx low rank)");
    }
}
