//! Fig. 22: average localization errors in all three environments at the
//! five timestamps, for the three databases (ground truth, iUpdater,
//! stale). The paper reports iUpdater tracking the ground-truth matrix
//! closely while improving on the stale matrix by 66.7 % / 57.4 % /
//! 55.1 % in the hall / office / library.

use crate::report::{FigureResult, Series};
use crate::scenario::{Scenario, INITIAL_SURVEY_SAMPLES, TIMESTAMPS};
use iupdater_core::FingerprintMatrix;
use iupdater_linalg::stats::mean;

/// Grid-location stride for the per-environment sweeps (keeps the full
/// 3 envs x 5 stamps x 3 methods sweep fast).
const STRIDE: usize = 2;

/// Regenerates Fig. 22. Series are labelled
/// `"<env>: <method>"`.
pub fn run() -> FigureResult {
    let mut fig = FigureResult::new(
        "fig22",
        "Localization errors in three environments over time",
        "timestamp",
        "localization error [m]",
    );
    fig.x_labels = TIMESTAMPS
        .iter()
        .map(|&(l, _)| format!("{l} later"))
        .collect();
    for (kind, s) in Scenario::all_environments() {
        let mut gt = Vec::new();
        let mut iu = Vec::new();
        let mut stale = Vec::new();
        for (k, &(_, day)) in TIMESTAMPS.iter().enumerate() {
            let fresh = FingerprintMatrix::survey(s.testbed(), day, INITIAL_SURVEY_SAMPLES);
            let rec = s.reconstruct(day);
            let salt = 3100 + 31 * k as u64;
            gt.push(mean(&s.localization_errors(&fresh, day, STRIDE, salt)));
            iu.push(mean(&s.localization_errors(&rec, day, STRIDE, salt)));
            stale.push(mean(&s.localization_errors(s.prior(), day, STRIDE, salt)));
        }
        fig.series
            .push(Series::from_ys(format!("{kind}: Groundtruth"), &gt));
        fig.series
            .push(Series::from_ys(format!("{kind}: iUpdater"), &iu));
        fig.series
            .push(Series::from_ys(format!("{kind}: OMP w/o rec."), &stale));
    }
    // Per-environment improvement notes (paper: 66.7/57.4/55.1 %).
    for (kind, _) in Scenario::all_environments() {
        let iu = fig
            .series_by_label(&format!("{kind}: iUpdater"))
            .expect("series")
            .points
            .iter()
            .map(|p| p.1)
            .sum::<f64>();
        let stale = fig
            .series_by_label(&format!("{kind}: OMP w/o rec."))
            .expect("series")
            .points
            .iter()
            .map(|p| p.1)
            .sum::<f64>();
        fig.notes.push(format!(
            "{kind}: average improvement over the stale matrix {:.1} %",
            (1.0 - iu / stale) * 100.0
        ));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iupdater_tracks_ground_truth_and_beats_stale_everywhere() {
        let fig = run();
        for kind in ["hall", "office", "library"] {
            let avg = |method: &str| {
                let s = fig
                    .series_by_label(&format!("{kind}: {method}"))
                    .expect("series");
                s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len() as f64
            };
            let gt = avg("Groundtruth");
            let iu = avg("iUpdater");
            let stale = avg("OMP w/o rec.");
            assert!(
                iu < stale,
                "{kind}: iUpdater ({iu} m) must beat stale ({stale} m)"
            );
            assert!(
                iu < gt * 2.6,
                "{kind}: iUpdater ({iu} m) should stay comparable to ground truth ({gt} m)"
            );
        }
    }

    #[test]
    fn nine_series_five_stamps() {
        let fig = run();
        assert_eq!(fig.series.len(), 9);
        for s in &fig.series {
            assert_eq!(s.points.len(), 5);
        }
    }
}
