//! Fig. 14: reconstruction-error CDFs at 45 days for four reference-set
//! choices: 7 of the 8 MIC locations, the 8 MIC locations (iUpdater),
//! 8 MIC + 1 random, and 11 random locations. In the paper, 7 locations
//! degrade the median by ~27 %, 8+1 matches 8, and 11 random degrades
//! by ~47 % — i.e. the MIC set is minimal *and* sufficient.

use crate::report::{FigureResult, Series};
use crate::scenario::Scenario;
use iupdater_baselines::random_ref::{add_random, drop_references, random_locations};
use iupdater_core::metrics::reconstruction_errors;
use iupdater_linalg::stats::{median, Ecdf};

/// The evaluation day (the paper uses the 45-day update).
pub const EVAL_DAY: f64 = 45.0;

/// Regenerates Fig. 14.
pub fn run() -> FigureResult {
    run_at(EVAL_DAY)
}

/// Fig. 14 at an arbitrary day offset.
pub fn run_at(day: f64) -> FigureResult {
    let s = Scenario::office();
    let truth = s.ground_truth(day);
    let refs = s.updater().reference_locations().to_vec();
    let n = s.prior().num_locations();

    let arms: Vec<(String, Vec<usize>)> = vec![
        ("7 reference locations".into(), drop_references(&refs, 1, 7)),
        ("8 reference locations (iUpdater)".into(), refs.clone()),
        (
            "(8 reference + 1 random) locations".into(),
            add_random(&refs, n, 1, 11),
        ),
        ("11 random locations".into(), random_locations(n, 11, 13)),
    ];

    let mut fig = FigureResult::new(
        "fig14",
        "Fingerprint reconstruction errors vs reference-set choice (45 days)",
        "reconstruction error [dB]",
        "CDF",
    );
    for (label, locations) in arms {
        let rec = s.reconstruct_with_references(&locations, day);
        let errs = reconstruction_errors(rec.matrix(), &truth).expect("shapes match");
        let ecdf = Ecdf::new(&errs);
        fig.series
            .push(Series::from_points(label.clone(), ecdf.curve(60)));
        fig.notes
            .push(format!("{label}: median error {:.2} dB", median(&errs)));
    }
    fig
}

/// Mean reconstruction error for each of the four arms (helper for
/// tests; the figure itself is the CDF).
pub fn arm_means(day: f64) -> [f64; 4] {
    let s = Scenario::office();
    let truth = s.ground_truth(day);
    let refs = s.updater().reference_locations().to_vec();
    let n = s.prior().num_locations();
    let arms = [
        drop_references(&refs, 1, 7),
        refs.clone(),
        add_random(&refs, n, 1, 11),
        random_locations(n, 11, 13),
    ];
    let mut out = [0.0; 4];
    for (k, locations) in arms.iter().enumerate() {
        let rec = s.reconstruct_with_references(locations, day);
        let errs = reconstruction_errors(rec.matrix(), &truth).expect("shapes");
        out[k] = errs.iter().sum::<f64>() / errs.len() as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mic_set_is_minimal_and_sufficient() {
        let [seven, eight, eight_plus, random11] = arm_means(EVAL_DAY);
        // Dropping a reference hurts (paper: ~27 % worse at the median).
        assert!(
            seven > eight * 1.05,
            "7 refs ({seven} dB) should be clearly worse than 8 ({eight} dB)"
        );
        // Adding a random extra barely changes it (paper: "more or less
        // the same").
        assert!(
            eight_plus < eight * 1.15 && eight_plus > eight * 0.6,
            "8+1 ({eight_plus} dB) should be comparable to 8 ({eight} dB)"
        );
        // Random selection is much worse (paper: ~47 % worse).
        assert!(
            random11 > eight * 1.3,
            "11 random ({random11} dB) should be much worse than 8 MIC ({eight} dB)"
        );
    }

    #[test]
    fn figure_has_four_cdfs() {
        let fig = run();
        assert_eq!(fig.series.len(), 4);
        for s in &fig.series {
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9, "CDF must be monotone");
            }
        }
    }
}
