//! Shared experiment setup: the simulated deployments, the six-timestamp
//! survey campaign, and the standard evaluation protocols.

use iupdater_baselines::rass::{default_rass_params, Rass};
use iupdater_core::classify::CellClassification;
use iupdater_core::metrics::localization_error_m;
use iupdater_core::prelude::*;
use iupdater_linalg::Matrix;
use iupdater_rfsim::{Environment, EnvironmentKind, Testbed};

/// The paper's update timestamps (label, day offset): 3 d, 5 d, 15 d,
/// 45 d, 3 months.
pub const TIMESTAMPS: [(&str, f64); 5] = [
    ("3 days", 3.0),
    ("5 days", 5.0),
    ("15 days", 15.0),
    ("45 days", 45.0),
    ("3 months", 90.0),
];

/// Samples per cell for the initial (ground-truth quality) survey.
pub const INITIAL_SURVEY_SAMPLES: usize = 50;
/// Samples per cell iUpdater collects at reference locations.
pub const UPDATE_SAMPLES: usize = 5;
/// Default deterministic scenario seed.
pub const DEFAULT_SEED: u64 = 20170605; // ICDCS'17 opening day

/// A ready-to-run experiment scenario: a testbed plus the day-0 database
/// and a configured updater.
#[derive(Debug)]
pub struct Scenario {
    testbed: Testbed,
    prior: FingerprintMatrix,
    updater: Updater,
    classification: CellClassification,
}

impl Scenario {
    /// Builds the scenario for an environment with the default seed.
    pub fn new(env: Environment) -> Self {
        Self::with_seed(env, DEFAULT_SEED)
    }

    /// Builds the scenario with an explicit seed.
    pub fn with_seed(env: Environment, seed: u64) -> Self {
        let testbed = Testbed::new(env, seed);
        let prior = FingerprintMatrix::survey(&testbed, 0.0, INITIAL_SURVEY_SAMPLES);
        let updater = Updater::new(prior.clone(), UpdaterConfig::default())
            .expect("default updater construction");
        let classification = CellClassification::from_testbed(&testbed);
        Scenario {
            testbed,
            prior,
            updater,
            classification,
        }
    }

    /// The office scenario used by most figures.
    pub fn office() -> Self {
        Scenario::new(Environment::office())
    }

    /// The simulated testbed.
    pub fn testbed(&self) -> &Testbed {
        &self.testbed
    }

    /// The day-0 database.
    pub fn prior(&self) -> &FingerprintMatrix {
        &self.prior
    }

    /// The configured updater.
    pub fn updater(&self) -> &Updater {
        &self.updater
    }

    /// The cell classification / index matrix `B`.
    pub fn classification(&self) -> &CellClassification {
        &self.classification
    }

    /// Noiseless ground-truth matrix at `day`.
    pub fn ground_truth(&self, day: f64) -> Matrix {
        self.testbed.expected_fingerprint_matrix(day)
    }

    /// iUpdater reconstruction at `day` (reference columns + free
    /// no-decrease readings, 5 samples each).
    pub fn reconstruct(&self, day: f64) -> FingerprintMatrix {
        self.reconstruct_with(self.updater(), day)
    }

    /// Reconstruction with a custom updater (ablations).
    pub fn reconstruct_with(&self, updater: &Updater, day: f64) -> FingerprintMatrix {
        updater
            .update_from_testbed(&self.testbed, day, UPDATE_SAMPLES)
            .expect("reconstruction")
    }

    /// Reconstruction from an arbitrary reference-location set (Fig. 14's
    /// arms). Builds a one-off updater whose correlation matrix is
    /// learned for exactly those columns.
    pub fn reconstruct_with_references(&self, refs: &[usize], day: f64) -> FingerprintMatrix {
        let x = self.prior.matrix();
        let mic_vectors = x.select_cols(refs);
        let z = iupdater_core::correlation::correlation_matrix(
            &mic_vectors,
            x,
            iupdater_core::correlation::CorrelationMethod::Lrr,
        )
        .expect("correlation");
        let p = iupdater_core::correlation::predict(
            &self.testbed.measure_columns(refs, day, UPDATE_SAMPLES),
            &z,
        )
        .expect("prediction shape");
        let b = self.classification.index_matrix();
        let x_b = b
            .hadamard(&no_decrease_matrix(&self.testbed, day))
            .expect("mask shape");
        let inputs = iupdater_core::self_augmented::SolverInputs {
            x_b,
            b,
            p: Some(p),
            per: self.prior.locations_per_link(),
            warm_start: Some(x.clone()),
        };
        let report = iupdater_core::self_augmented::Solver::new(inputs, UpdaterConfig::default())
            .expect("solver construction")
            .solve()
            .expect("solve");
        self.prior
            .with_matrix(report.reconstruction())
            .expect("shape preserved")
    }

    /// Per-location localization errors (metres) when matching online
    /// day-`day` measurements against `database`. Evaluates every
    /// `stride`-th grid location.
    pub fn localization_errors(
        &self,
        database: &FingerprintMatrix,
        day: f64,
        stride: usize,
        probe_salt: u64,
    ) -> Vec<f64> {
        let localizer = Localizer::new(database.clone(), LocalizerConfig::default());
        let d = self.testbed.deployment();
        (0..d.num_locations())
            .step_by(stride.max(1))
            .map(|j| {
                let y = self
                    .testbed
                    .online_measurement(j, day, probe_salt.wrapping_add(j as u64));
                let est = localizer.localize(&y).expect("localization");
                localization_error_m(d, j, est.grid)
            })
            .collect()
    }

    /// Per-location RASS errors (metres) with RASS trained on `database`.
    pub fn rass_errors(
        &self,
        database: &FingerprintMatrix,
        day: f64,
        stride: usize,
        probe_salt: u64,
    ) -> Vec<f64> {
        let d = self.testbed.deployment();
        let rass = Rass::train(database, d, default_rass_params());
        (0..d.num_locations())
            .step_by(stride.max(1))
            .map(|j| {
                let y = self
                    .testbed
                    .online_measurement(j, day, probe_salt.wrapping_add(j as u64));
                rass.error_m(&y, d, j)
            })
            .collect()
    }

    /// All three environment scenarios in Fig. 19/22 order
    /// (hall, office, library).
    pub fn all_environments() -> Vec<(EnvironmentKind, Scenario)> {
        Environment::all_presets()
            .into_iter()
            .map(|e| (e.kind, Scenario::new(e)))
            .collect()
    }
}

/// The freely collectable no-decrease matrix `X_B` at `day`.
pub fn no_decrease_matrix(testbed: &Testbed, day: f64) -> Matrix {
    FingerprintMatrix::survey_no_decrease(testbed, day, UPDATE_SAMPLES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn office_scenario_builds() {
        let s = Scenario::office();
        assert_eq!(s.prior().num_links(), 8);
        assert_eq!(s.prior().num_locations(), 96);
        assert!(s.updater().reference_locations().len() <= 8);
    }

    #[test]
    fn reconstruction_beats_stale_at_45_days() {
        let s = Scenario::office();
        let truth = s.ground_truth(45.0);
        let rec = s.reconstruct(45.0);
        let err_rec =
            iupdater_core::metrics::mean_reconstruction_error(rec.matrix(), &truth).unwrap();
        let err_stale =
            iupdater_core::metrics::mean_reconstruction_error(s.prior().matrix(), &truth).unwrap();
        assert!(err_rec < err_stale, "{err_rec} vs stale {err_stale}");
    }

    #[test]
    fn localization_protocol_returns_errors() {
        let s = Scenario::office();
        let errs = s.localization_errors(s.prior(), 0.0, 8, 1);
        assert_eq!(errs.len(), 12);
        assert!(errs.iter().all(|&e| (0.0..15.0).contains(&e)));
    }

    #[test]
    fn custom_reference_reconstruction_runs() {
        let s = Scenario::office();
        let refs: Vec<usize> = s.updater().reference_locations().to_vec();
        let rec = s.reconstruct_with_references(&refs, 15.0);
        assert_eq!(rec.num_locations(), 96);
    }
}
