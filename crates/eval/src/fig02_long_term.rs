//! Fig. 2: the RSS distribution at a fixed cell shifts over days
//! (~2.5 dB after 5 days, ~6 dB after 45 days in the paper's
//! deployment).

use crate::report::{FigureResult, Series};
use crate::scenario::Scenario;

/// Histogram bin width in dB.
const BIN_DB: f64 = 1.0;
/// Samples collected per day for the histogram.
const SAMPLES: usize = 400;

fn histogram(values: &[f64], lo: f64, hi: f64) -> Vec<(f64, f64)> {
    let bins = ((hi - lo) / BIN_DB).ceil() as usize;
    let mut counts = vec![0usize; bins];
    for &v in values {
        let b = (((v - lo) / BIN_DB).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[b] += 1;
    }
    counts
        .iter()
        .enumerate()
        .map(|(b, &c)| {
            (
                lo + (b as f64 + 0.5) * BIN_DB,
                c as f64 / values.len() as f64,
            )
        })
        .collect()
}

/// Regenerates Fig. 2: RSS histograms at the original time, 5 days
/// later and 45 days later, with the mean shifts in the notes.
pub fn run() -> FigureResult {
    let s = Scenario::office();
    let grid = s.prior().location_index(0, 5);
    let days = [
        ("original time", 0.0),
        ("5 days later", 5.0),
        ("45 days later", 45.0),
    ];

    let traces: Vec<(String, Vec<f64>)> = days
        .iter()
        .map(|&(label, day)| {
            (
                label.to_string(),
                s.testbed()
                    .synced_traces(&[(0, grid)], day, SAMPLES)
                    .row(0)
                    .to_vec(),
            )
        })
        .collect();
    let lo = traces
        .iter()
        .flat_map(|(_, t)| t.iter())
        .cloned()
        .fold(f64::INFINITY, f64::min)
        - 1.0;
    let hi = traces
        .iter()
        .flat_map(|(_, t)| t.iter())
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        + 1.0;

    let mut fig = FigureResult::new(
        "fig2",
        "RSS distribution shift over days (same cell)",
        "RSS [dBm]",
        "fraction",
    );
    let mean0 = iupdater_linalg::stats::mean(&traces[0].1);
    for (label, trace) in &traces {
        fig.series
            .push(Series::from_points(label.clone(), histogram(trace, lo, hi)));
        let m = iupdater_linalg::stats::mean(trace);
        fig.notes.push(format!(
            "{label}: mean {m:.1} dBm (shift {:+.1} dB)",
            m - mean0
        ));
    }
    fig.notes
        .push("paper: shifts of ~2.5 dB after 5 days and ~6 dB after 45 days".into());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_shifts_grow_with_time() {
        let fig = run();
        assert_eq!(fig.series.len(), 3);
        // Parse the shifts back from the notes is fragile; recompute.
        let s = Scenario::office();
        let grid = s.prior().location_index(0, 5);
        let mean_at = |day: f64| {
            let t = s
                .testbed()
                .synced_traces(&[(0, grid)], day, SAMPLES)
                .row(0)
                .to_vec();
            iupdater_linalg::stats::mean(&t)
        };
        let m0 = mean_at(0.0);
        let m5 = (mean_at(5.0) - m0).abs();
        let m45 = (mean_at(45.0) - m0).abs();
        // Drift magnitudes in the paper's range (loose bands: one
        // realisation of a random walk).
        assert!(m5 > 0.3 && m5 < 8.0, "5-day shift {m5} dB");
        assert!(m45 > 1.0 && m45 < 12.0, "45-day shift {m45} dB");
    }

    #[test]
    fn histograms_are_distributions() {
        let fig = run();
        for s in &fig.series {
            let total: f64 = s.points.iter().map(|p| p.1).sum();
            assert!((total - 1.0).abs() < 1e-9, "histogram sums to {total}");
            assert!(s.points.iter().all(|p| p.1 >= 0.0));
        }
    }
}
