//! The experiment runner: regenerates any or all of the paper's figures
//! and tables.
//!
//! ```text
//! experiments                 # run everything, print markdown
//! experiments fig16 fig18     # run selected experiments
//! experiments --csv fig21     # CSV to stdout
//! experiments --out results/  # also write one CSV per experiment
//! experiments --list          # list experiment ids
//! ```

use std::fs;
use std::path::PathBuf;

use iupdater_eval::all_experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => csv = true,
            "--out" => {
                let dir = it.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                });
                out_dir = Some(PathBuf::from(dir));
            }
            "--list" => {
                for (id, desc, _) in all_experiments() {
                    println!("{id:12} {desc}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--csv] [--out DIR] [--list] [IDS...]\n\
                     Regenerates the iUpdater paper's figures/tables. With no IDS, runs all."
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }

    let experiments = all_experiments();
    let selected: Vec<_> = if wanted.is_empty() {
        experiments
    } else {
        let known: Vec<&str> = experiments.iter().map(|e| e.0).collect();
        for w in &wanted {
            if !known.contains(&w.as_str()) {
                eprintln!("unknown experiment '{w}'; use --list");
                std::process::exit(2);
            }
        }
        experiments
            .into_iter()
            .filter(|(id, _, _)| wanted.iter().any(|w| w == id))
            .collect()
    };

    if let Some(dir) = &out_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    for (id, desc, runner) in selected {
        eprintln!("running {id} ({desc})...");
        let start = std::time::Instant::now();
        let result = runner();
        eprintln!("  done in {:.1} s", start.elapsed().as_secs_f64());
        if csv {
            println!("{}", result.to_csv());
        } else {
            println!("{}", result.to_markdown());
        }
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{id}.csv"));
            if let Err(e) = fs::write(&path, result.to_csv()) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
