//! Fig. 19: reconstruction error per environment — lowest in the hall
//! (low multipath), higher in the office, highest in the library (rich
//! NLoS multipath), at every timestamp.

use crate::report::{FigureResult, Series};
use crate::scenario::{Scenario, TIMESTAMPS};
use iupdater_core::metrics::mean_reconstruction_error;

/// Regenerates Fig. 19.
pub fn run() -> FigureResult {
    let mut fig = FigureResult::new(
        "fig19",
        "Reconstruction errors in different environments",
        "timestamp",
        "reconstruction error [dB]",
    );
    fig.x_labels = TIMESTAMPS
        .iter()
        .map(|&(l, _)| format!("{l} later"))
        .collect();
    for (kind, scenario) in Scenario::all_environments() {
        let ys: Vec<f64> = TIMESTAMPS
            .iter()
            .map(|&(_, day)| {
                let rec = scenario.reconstruct(day);
                mean_reconstruction_error(rec.matrix(), &scenario.ground_truth(day))
                    .expect("shapes")
            })
            .collect();
        let label = match kind.to_string().as_str() {
            "hall" => "Hall (low multipath)",
            "office" => "Office (medium multipath)",
            "library" => "Library (high multipath)",
            other => return panic_unknown(other),
        };
        fig.series.push(Series::from_ys(label, &ys));
    }
    fig
}

fn panic_unknown(kind: &str) -> FigureResult {
    panic!("unexpected environment kind {kind}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_ordering_matches_paper() {
        let fig = run();
        let avg = |label: &str| {
            let s = fig.series_by_label(label).expect("series");
            s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len() as f64
        };
        let hall = avg("Hall (low multipath)");
        let office = avg("Office (medium multipath)");
        let library = avg("Library (high multipath)");
        assert!(
            hall < office,
            "hall ({hall} dB) should beat office ({office} dB)"
        );
        assert!(
            office < library * 1.1,
            "office ({office} dB) should be at or below library ({library} dB)"
        );
        // Library error after 3 months is still bounded (paper: 4.9 dB,
        // comparable to the RSS random variation).
        let lib_series = fig.series_by_label("Library (high multipath)").unwrap();
        let last = lib_series.points.last().unwrap().1;
        assert!(last < 8.0, "library 3-month error {last} dB out of scale");
    }

    #[test]
    fn three_environments_five_stamps() {
        let fig = run();
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.points.len(), 5);
        }
    }
}
