//! Fig. 6: RSS *differences* — between neighbouring locations and
//! between adjacent links — are far more stable than the raw RSS
//! readings, because interference and drift are common-mode.

use crate::report::{FigureResult, Series};
use crate::scenario::Scenario;
use iupdater_linalg::stats::std_dev;

/// Regenerates Fig. 6: de-meaned traces of (a) the raw RSS of one cell,
/// (b) the difference between two neighbouring cells on the same link,
/// and (c) the difference between the same relative cells of two
/// adjacent links, over 100 s.
pub fn run() -> FigureResult {
    let s = Scenario::office();
    let fp = s.prior();
    let cell_a = fp.location_index(2, 5);
    let cell_b = fp.location_index(2, 6); // neighbour on the same link
    let cell_c = fp.location_index(3, 5); // same relative cell, next link
    let traces = s
        .testbed()
        .synced_traces(&[(2, cell_a), (2, cell_b), (3, cell_c)], 0.0, 200);

    let demean = |v: &[f64]| -> Vec<f64> {
        let m = iupdater_linalg::stats::mean(v);
        v.iter().map(|x| x - m).collect()
    };
    let raw = demean(traces.row(0));
    let neighbor_diff: Vec<f64> = demean(
        &traces
            .row(0)
            .iter()
            .zip(traces.row(1))
            .map(|(a, b)| a - b)
            .collect::<Vec<_>>(),
    );
    let link_diff: Vec<f64> = demean(
        &traces
            .row(0)
            .iter()
            .zip(traces.row(2))
            .map(|(a, c)| a - c)
            .collect::<Vec<_>>(),
    );

    let to_points = |v: &[f64]| -> Vec<(f64, f64)> {
        v.iter()
            .enumerate()
            .map(|(k, &y)| (k as f64 * 0.5, y))
            .collect()
    };
    let mut fig = FigureResult::new(
        "fig6",
        "Stability of RSS differences vs raw RSS (de-meaned, 100 s)",
        "time [s]",
        "deviation [dB]",
    );
    fig.series
        .push(Series::from_points("RSS readings", to_points(&raw)));
    fig.series.push(Series::from_points(
        "RSS difference of neighboring locations",
        to_points(&neighbor_diff),
    ));
    fig.series.push(Series::from_points(
        "RSS difference of adjacent links",
        to_points(&link_diff),
    ));
    fig.notes.push(format!(
        "std dev — raw: {:.2} dB, neighbour diff: {:.2} dB, adjacent-link diff: {:.2} dB",
        std_dev(&raw),
        std_dev(&neighbor_diff),
        std_dev(&link_diff)
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differences_are_stabler_than_raw() {
        let fig = run();
        let std_of = |label: &str| {
            let ys: Vec<f64> = fig
                .series_by_label(label)
                .expect("series present")
                .points
                .iter()
                .map(|p| p.1)
                .collect();
            std_dev(&ys)
        };
        let raw = std_of("RSS readings");
        let nd = std_of("RSS difference of neighboring locations");
        let ld = std_of("RSS difference of adjacent links");
        assert!(nd < raw, "neighbour diff std {nd} must be below raw {raw}");
        assert!(
            ld < raw * 1.7,
            "link diff std {ld} should not blow up vs raw {raw}"
        );
    }

    #[test]
    fn traces_span_100_seconds() {
        let fig = run();
        for s in &fig.series {
            assert_eq!(s.points.len(), 200);
            assert!((s.points.last().unwrap().0 - 99.5).abs() < 1e-9);
        }
    }
}
