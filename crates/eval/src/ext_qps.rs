//! Extension experiment (not in the paper): a heavy-traffic read-path
//! day over the fleet — hundreds of thousands of localization queries
//! replayed through the [`FleetGateway`]'s epoch-swapped published
//! snapshots, interleaved with the paper's update cycles.
//!
//! The point of the scenario is *exactness at scale*: every batched
//! estimate served from a published snapshot is checked against a
//! freshly built unprepared-path oracle
//! (`Localizer::localize_unprepared`) over the **same epoch's**
//! database. The prepared structures, the lane-blocked pursuit, the
//! chunked pool fan-out, and the read/write-separated gateway path may
//! only change cost, never answers — this replay asserts it over the
//! whole fleet and the whole campaign, at every one of the paper's
//! update timestamps.

use crate::ext_fleet::{standard_fleet, standard_testbeds};
use crate::report::{FigureResult, Series};
use crate::scenario::{TIMESTAMPS, UPDATE_SAMPLES};
use iupdater_core::prelude::*;

/// Queries replayed per grid cell per timestamp in the heavy [`run`]:
/// with the three-environment fleet and the five paper timestamps this
/// lands in the hundreds of thousands of localizations.
const HEAVY_QUERIES_PER_CELL: usize = 140;

/// Runs the heavy-traffic replay (see [`run_with`]).
pub fn run() -> FigureResult {
    run_with(HEAVY_QUERIES_PER_CELL)
}

/// Replays `queries_per_cell` online measurements per grid cell per
/// deployment at each paper timestamp, interleaved with update cycles
/// driven through the gateway: each cycle commits on the drive loop
/// and atomically publishes a new epoch per deployment; the whole
/// query slab then runs through the pinned snapshot's batched read
/// path and every estimate is asserted equal — grid, support,
/// coefficients, residual bits — to the unprepared oracle built over
/// that same epoch's database. Query traffic comes from twin testbeds
/// ([`standard_testbeds`]) because the gateway owns the fleet's
/// simulators on its drive loop.
///
/// # Panics
///
/// Panics if any cycle fails or any batched estimate deviates from the
/// unprepared path (that would be a parity bug; the read path must
/// never trade accuracy for speed).
pub fn run_with(queries_per_cell: usize) -> FigureResult {
    let seed = crate::scenario::DEFAULT_SEED;
    let twins = standard_testbeds(seed);
    let gw = FleetGateway::launch(standard_fleet(seed)).expect("gateway launch");
    let ids = gw.ids().to_vec();
    assert_eq!(ids.len(), twins.len());
    let mut errs: Vec<Vec<f64>> = vec![Vec::new(); ids.len()];
    let mut total_queries = 0usize;

    for (cycle, &(_, day)) in TIMESTAMPS.iter().enumerate() {
        gw.run_cycle(day, UPDATE_SAMPLES).expect("fleet cycle");
        for (k, &id) in ids.iter().enumerate() {
            // Pin the epoch this reader observed; everything below —
            // queries, oracle, assertions — runs against it.
            let snap = gw.published(id).expect("published snapshot");
            assert_eq!(snap.epoch(), 2 + cycle as u64, "one epoch per commit");
            let t = &twins[k].1;
            let n = t.deployment().num_locations();
            let queries: Vec<Vec<f64>> = (0..n * queries_per_cell)
                .map(|q| t.online_measurement(q % n, day, (day as u64) * 100_000 + q as u64))
                .collect();
            let batch = snap.localize_batch(&queries).expect("batched localization");
            assert_eq!(batch.len(), queries.len());

            // The oracle: a from-scratch localizer over the same
            // epoch's published database, answering through the
            // original scalar path.
            let oracle = Localizer::new(snap.fingerprint().clone(), LocalizerConfig::default());
            let d = t.deployment();
            let mut err_sum = 0.0;
            for (q, (y, est)) in queries.iter().zip(&batch).enumerate() {
                let truth = oracle.localize_unprepared(y).expect("oracle localization");
                assert_eq!(
                    est, &truth,
                    "gateway estimate deviated from the unprepared path \
                     (deployment {k}, day {day}, query {q})"
                );
                assert_eq!(est.residual_sq.to_bits(), truth.residual_sq.to_bits());
                err_sum += d.location(q % n).distance(d.location(est.grid));
            }
            errs[k].push(err_sum / queries.len() as f64);
            total_queries += queries.len();
        }
    }
    gw.shutdown().expect("gateway shutdown");

    let mut result = FigureResult {
        id: "ext-qps".into(),
        title: "Heavy-traffic read path: gateway snapshots vs unprepared oracle".into(),
        axes: (
            "update timestamp".into(),
            "mean localization error [m]".into(),
        ),
        x_labels: TIMESTAMPS.iter().map(|(l, _)| (*l).to_string()).collect(),
        series: Vec::new(),
        notes: Vec::new(),
    };
    for (k, (name, _)) in twins.iter().enumerate() {
        result.series.push(Series::from_ys(name.clone(), &errs[k]));
    }
    result.notes.push(format!(
        "{total_queries} localizations served from epoch-swapped gateway \
         snapshots, interleaved with {} update cycles on the drive loop; \
         every estimate equals the unprepared scalar path exactly \
         (bit-identical residuals) on the epoch the reader observed",
        TIMESTAMPS.len()
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_exact_and_errors_bounded() {
        // Small per-cell load to stay affordable in the debug tier;
        // the exactness assertions inside run_with are the test.
        let result = run_with(2);
        assert_eq!(result.series.len(), 3);
        for s in &result.series {
            assert_eq!(s.points.len(), TIMESTAMPS.len());
            for &(_, y) in &s.points {
                assert!(
                    y.is_finite() && (0.0..8.0).contains(&y),
                    "{}: {y} m",
                    s.label
                );
            }
        }
        assert!(result.notes[0].contains("unprepared scalar path exactly"));
        assert!(result.notes[0].contains("epoch-swapped gateway"));
    }
}
