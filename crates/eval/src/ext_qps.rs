//! Extension experiment (not in the paper): a heavy-traffic read-path
//! day over the fleet — hundreds of thousands of localization queries
//! replayed through [`UpdateService::localize_batch`], interleaved
//! with the paper's update cycles.
//!
//! The point of the scenario is *exactness at scale*: every batched
//! estimate is checked against a freshly built unprepared-path oracle
//! (`Localizer::localize_unprepared`) over the same published
//! database. The prepared structures, the lane-blocked pursuit, and
//! the chunked pool fan-out may only change cost, never answers — this
//! replay asserts it over the whole fleet and the whole campaign, at
//! every one of the paper's update timestamps.

use crate::ext_fleet::standard_fleet;
use crate::report::{FigureResult, Series};
use crate::scenario::{TIMESTAMPS, UPDATE_SAMPLES};
use iupdater_core::prelude::*;

/// Queries replayed per grid cell per timestamp in the heavy [`run`]:
/// with the three-environment fleet and the five paper timestamps this
/// lands in the hundreds of thousands of localizations.
const HEAVY_QUERIES_PER_CELL: usize = 140;

/// Runs the heavy-traffic replay (see [`run_with`]).
pub fn run() -> FigureResult {
    run_with(HEAVY_QUERIES_PER_CELL)
}

/// Replays `queries_per_cell` online measurements per grid cell per
/// deployment at each paper timestamp, interleaved with update cycles:
/// cycle commits (rebuilding each deployment's prepared localizer at
/// the publish point), then the whole query slab runs through the
/// batched read path and every estimate is asserted equal — grid,
/// support, coefficients, residual bits — to the unprepared oracle.
///
/// # Panics
///
/// Panics if any cycle fails or any batched estimate deviates from the
/// unprepared path (that would be a parity bug; the read path must
/// never trade accuracy for speed).
pub fn run_with(queries_per_cell: usize) -> FigureResult {
    let mut service = standard_fleet(crate::scenario::DEFAULT_SEED);
    let ids = service.ids();
    let mut errs: Vec<Vec<f64>> = vec![Vec::new(); ids.len()];
    let mut total_queries = 0usize;

    for &(_, day) in TIMESTAMPS.iter() {
        service.run_cycle(day, UPDATE_SAMPLES).expect("fleet cycle");
        for (k, &id) in ids.iter().enumerate() {
            let t = service.testbed(id).expect("registered id");
            let n = t.deployment().num_locations();
            let queries: Vec<Vec<f64>> = (0..n * queries_per_cell)
                .map(|q| t.online_measurement(q % n, day, (day as u64) * 100_000 + q as u64))
                .collect();
            let batch = service
                .localize_batch(id, &queries)
                .expect("batched localization");
            assert_eq!(batch.len(), queries.len());

            // The oracle: a from-scratch localizer over the same
            // published database, answering through the original
            // scalar path.
            let oracle = Localizer::new(
                service.fingerprint(id).expect("registered id").clone(),
                LocalizerConfig::default(),
            );
            let d = service.testbed(id).expect("registered id").deployment();
            let mut err_sum = 0.0;
            for (q, (y, est)) in queries.iter().zip(&batch).enumerate() {
                let truth = oracle.localize_unprepared(y).expect("oracle localization");
                assert_eq!(
                    est, &truth,
                    "batched estimate deviated from the unprepared path \
                     (deployment {k}, day {day}, query {q})"
                );
                assert_eq!(est.residual_sq.to_bits(), truth.residual_sq.to_bits());
                err_sum += d.location(q % n).distance(d.location(est.grid));
            }
            errs[k].push(err_sum / queries.len() as f64);
            total_queries += queries.len();
        }
    }

    let mut result = FigureResult {
        id: "ext-qps".into(),
        title: "Heavy-traffic read path: batched queries vs unprepared oracle".into(),
        axes: (
            "update timestamp".into(),
            "mean localization error [m]".into(),
        ),
        x_labels: TIMESTAMPS.iter().map(|(l, _)| (*l).to_string()).collect(),
        series: Vec::new(),
        notes: Vec::new(),
    };
    for (k, &id) in ids.iter().enumerate() {
        let name = service.name(id).expect("registered id").to_string();
        result.series.push(Series::from_ys(name, &errs[k]));
    }
    result.notes.push(format!(
        "{total_queries} localizations served through the batched prepared \
         path, interleaved with {} update cycles; every estimate equals the \
         unprepared scalar path exactly (bit-identical residuals)",
        TIMESTAMPS.len()
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_exact_and_errors_bounded() {
        // Small per-cell load to stay affordable in the debug tier;
        // the exactness assertions inside run_with are the test.
        let result = run_with(2);
        assert_eq!(result.series.len(), 3);
        for s in &result.series {
            assert_eq!(s.points.len(), TIMESTAMPS.len());
            for &(_, y) in &s.points {
                assert!(
                    y.is_finite() && (0.0..8.0).contains(&y),
                    "{}: {y} m",
                    s.label
                );
            }
        }
        assert!(result.notes[0].contains("unprepared scalar path exactly"));
    }
}
