//! Experiment harness for the iUpdater reproduction.
//!
//! One module per figure/table of the paper's evaluation (Sec. II and
//! VI). Each module exposes a `run(...)` function returning a
//! [`report::FigureResult`] — the same series the paper plots — plus
//! tests asserting the paper's qualitative shape (who wins, by roughly
//! what factor, where crossovers fall).
//!
//! The `experiments` binary runs any or all of them and prints
//! markdown/CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod scenario;

pub mod ablations;
pub mod ext_durability;
pub mod ext_fleet;
pub mod ext_qps;
pub mod ext_samples;
pub mod ext_scale;
pub mod ext_tracking;
pub mod fig01_short_term;
pub mod fig02_long_term;
pub mod fig05_singular_values;
pub mod fig06_difference_stability;
pub mod fig08_nlc_cdf;
pub mod fig09_als_cdf;
pub mod fig11_13_layouts;
pub mod fig14_reference_sets;
pub mod fig15_reference_sets_time;
pub mod fig16_constraints;
pub mod fig17_variation_robustness;
pub mod fig18_recon_cdf;
pub mod fig19_environments;
pub mod fig20_labor_scaling;
pub mod fig21_localization_cdf;
pub mod fig22_localization_envs;
pub mod fig23_rass_cdf;
pub mod fig24_rass_time;
pub mod table_labor;

pub use report::{FigureResult, Series};
pub use scenario::Scenario;

/// One registered experiment: `(id, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> FigureResult);

/// Every experiment in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        (
            "fig1",
            "Short-term RSS variation trace",
            fig01_short_term::run as fn() -> FigureResult,
        ),
        (
            "fig2",
            "Long-term RSS drift histograms",
            fig02_long_term::run,
        ),
        (
            "fig5",
            "Normalised singular values (approx. low rank)",
            fig05_singular_values::run,
        ),
        (
            "fig6",
            "Stability of RSS differences",
            fig06_difference_stability::run,
        ),
        (
            "fig8",
            "CDF of neighbouring-location continuity (NLC)",
            fig08_nlc_cdf::run,
        ),
        (
            "fig9",
            "CDF of adjacent-link similarity (ALS)",
            fig09_als_cdf::run,
        ),
        (
            "fig11-13",
            "Deployment layouts of the three environments",
            fig11_13_layouts::run,
        ),
        (
            "fig14",
            "Reconstruction error vs reference-set choice (CDF)",
            fig14_reference_sets::run,
        ),
        (
            "fig15",
            "Reconstruction error vs reference sets over time",
            fig15_reference_sets_time::run,
        ),
        (
            "fig16",
            "Effect of constraints 1 and 2",
            fig16_constraints::run,
        ),
        (
            "fig17",
            "Constraint 2 vs measured fingerprints",
            fig17_variation_robustness::run,
        ),
        (
            "fig18",
            "Reconstruction error CDFs over time",
            fig18_recon_cdf::run,
        ),
        (
            "fig19",
            "Reconstruction error per environment",
            fig19_environments::run,
        ),
        (
            "fig20",
            "Update labor cost vs area scale",
            fig20_labor_scaling::run,
        ),
        (
            "fig21",
            "Localization error CDFs at 45 days",
            fig21_localization_cdf::run,
        ),
        (
            "fig22",
            "Localization error per environment over time",
            fig22_localization_envs::run,
        ),
        (
            "fig23",
            "Comparison with RASS (CDF at 45 days)",
            fig23_rass_cdf::run,
        ),
        (
            "fig24",
            "Comparison with RASS over time",
            fig24_rass_time::run,
        ),
        (
            "table-labor",
            "Labor cost accounting (Sec. VI-C)",
            table_labor::run,
        ),
        (
            "ablations",
            "Design-choice ablations (this repo)",
            ablations::run,
        ),
        (
            "ext-tracking",
            "Tracking extension: Viterbi vs independent (this repo)",
            ext_tracking::run,
        ),
        (
            "ext-scale",
            "Scaling extension: accuracy/compute vs area (this repo)",
            ext_scale::run,
        ),
        (
            "ext-samples",
            "Samples-per-reference sweep (this repo)",
            ext_samples::run,
        ),
        (
            "ext-fleet",
            "Batched update service across the fleet (this repo)",
            ext_fleet::run,
        ),
        (
            "ext-fleet-rebase",
            "Rebase-heavy fleet campaign on the warm-start path (this repo)",
            ext_fleet::run_rebase_heavy,
        ),
        (
            "ext-durability",
            "Durable fleet: kill/restore parity mid-campaign (this repo)",
            ext_durability::run,
        ),
        (
            "ext-qps",
            "Heavy-traffic localization day through the batched read path (this repo)",
            ext_qps::run,
        ),
    ]
}
