//! Fig. 1: RSS measurements vary by ~5 dB within 100 seconds.

use crate::report::{FigureResult, Series};
use crate::scenario::Scenario;

/// Regenerates Fig. 1: a 100 s RSS trace (200 samples at 0.5 s) of one
/// office link with a target parked at one grid cell.
pub fn run() -> FigureResult {
    let s = Scenario::office();
    let cell = (0usize, 5usize);
    let grid = s.prior().location_index(cell.0, cell.1);
    let trace = s
        .testbed()
        .synced_traces(&[(cell.0, grid)], 0.0, 200)
        .row(0)
        .to_vec();
    let points: Vec<(f64, f64)> = trace
        .iter()
        .enumerate()
        .map(|(k, &v)| (k as f64 * 0.5, v))
        .collect();

    let max = trace.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = trace.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut fig = FigureResult::new(
        "fig1",
        "Short-term RSS variation over 100 s",
        "time [s]",
        "RSS [dBm]",
    );
    fig.series.push(Series::from_points("RSS trace", points));
    fig.notes.push(format!(
        "peak-to-peak variation: {:.1} dB (paper: ~5 dB)",
        max - min
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_matches_paper_shape() {
        let fig = run();
        let trace = &fig.series[0].points;
        assert_eq!(trace.len(), 200);
        let ys: Vec<f64> = trace.iter().map(|p| p.1).collect();
        let max = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        // Paper: ~5 dB peak-to-peak.
        assert!((2.5..9.0).contains(&(max - min)), "pp = {}", max - min);
        // Plausible dBm levels.
        assert!(ys.iter().all(|&v| (-95.0..-30.0).contains(&v)));
        // Time axis spans 100 s.
        assert!((trace.last().unwrap().0 - 99.5).abs() < 1e-9);
    }
}
