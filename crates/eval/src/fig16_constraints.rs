//! Fig. 16: the two constraints each cut the reconstruction error —
//! basic RSVD alone is poor, adding constraint 1 (MIC correlation)
//! reduces the error a lot, and adding constraint 2 (continuity +
//! similarity) reduces it further, at all five timestamps.

use crate::report::{FigureResult, Series};
use crate::scenario::{Scenario, TIMESTAMPS};
use iupdater_core::metrics::mean_reconstruction_error;
use iupdater_core::{Updater, UpdaterConfig};

/// Regenerates Fig. 16.
pub fn run() -> FigureResult {
    let s = Scenario::office();
    let arms: Vec<(&str, UpdaterConfig)> = vec![
        ("RSVD", UpdaterConfig::basic_rsvd()),
        (
            "RSVD + Constraint 1",
            UpdaterConfig::with_constraint1_only(),
        ),
        (
            "RSVD + Constraint 1 + Constraint 2",
            UpdaterConfig::default(),
        ),
    ];

    let mut fig = FigureResult::new(
        "fig16",
        "Reconstruction error when adding the constraints",
        "timestamp",
        "reconstruction error [dB]",
    );
    fig.x_labels = TIMESTAMPS
        .iter()
        .map(|&(l, _)| format!("{l} later"))
        .collect();
    for (label, cfg) in arms {
        let updater = Updater::new(s.prior().clone(), cfg).expect("updater");
        let ys: Vec<f64> = TIMESTAMPS
            .iter()
            .map(|&(_, day)| {
                let rec = s.reconstruct_with(&updater, day);
                mean_reconstruction_error(rec.matrix(), &s.ground_truth(day)).expect("shapes")
            })
            .collect();
        fig.series.push(Series::from_ys(label, &ys));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraints_reduce_error_in_order() {
        let fig = run();
        let avg = |label: &str| {
            let s = fig.series_by_label(label).expect("series");
            s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len() as f64
        };
        let basic = avg("RSVD");
        let c1 = avg("RSVD + Constraint 1");
        let c12 = avg("RSVD + Constraint 1 + Constraint 2");
        assert!(
            c1 < basic * 0.8,
            "constraint 1 should cut the error a lot: {c1} vs {basic}"
        );
        assert!(
            c12 <= c1 * 1.02,
            "constraint 2 should further reduce (or at least not hurt): {c12} vs {c1}"
        );
    }

    #[test]
    fn three_series_five_stamps() {
        let fig = run();
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.points.len(), 5);
        }
    }
}
