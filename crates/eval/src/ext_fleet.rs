//! Extension experiment (not in the paper): the batched
//! [`UpdateService`] serving a fleet of deployments — one per
//! environment preset — through the paper's five update timestamps.
//!
//! This is the evaluation-side port onto the Layer-3 batched API: the
//! same campaign `Scenario` runs one deployment at a time, the service
//! runs all of them per cycle (in parallel across deployments on
//! multi-core hosts) and keeps each fleet member's database live
//! between cycles.

use crate::report::{FigureResult, Series};
use crate::scenario::{INITIAL_SURVEY_SAMPLES, TIMESTAMPS, UPDATE_SAMPLES};
use iupdater_core::metrics::mean_reconstruction_error;
use iupdater_core::prelude::*;
use iupdater_rfsim::{Environment, Testbed};

/// Builds the standard three-environment fleet.
pub fn standard_fleet(seed: u64) -> UpdateService {
    let mut service = UpdateService::new();
    for (i, env) in Environment::all_presets().into_iter().enumerate() {
        let name = format!("{:?}", env.kind).to_lowercase();
        service
            .register(
                name,
                Testbed::new(env, seed.wrapping_add(i as u64)),
                UpdaterConfig::default(),
                INITIAL_SURVEY_SAMPLES,
            )
            .expect("fleet registration");
    }
    service
}

/// Twin testbeds for the standard fleet, in registration order: the
/// same `(environment, seed)` pairs [`standard_fleet`] registers, for
/// callers that hand the fleet to a [`FleetGateway`] (which owns the
/// service, testbeds included, on its drive loop) but still need the
/// deterministic simulators to generate query traffic and ground truth.
pub fn standard_testbeds(seed: u64) -> Vec<(String, Testbed)> {
    Environment::all_presets()
        .into_iter()
        .enumerate()
        .map(|(i, env)| {
            let name = format!("{:?}", env.kind).to_lowercase();
            (name, Testbed::new(env, seed.wrapping_add(i as u64)))
        })
        .collect()
}

/// Runs the fleet campaign: one update cycle per paper timestamp, one
/// reconstruction-error series per deployment.
pub fn run() -> FigureResult {
    let mut service = standard_fleet(crate::scenario::DEFAULT_SEED);
    let ids = service.ids();
    let mut errs: Vec<Vec<f64>> = vec![Vec::new(); ids.len()];

    for &(_, day) in TIMESTAMPS.iter() {
        let outcomes = service.run_cycle(day, UPDATE_SAMPLES).expect("fleet cycle");
        assert_eq!(outcomes.len(), ids.len());
        for (k, &id) in ids.iter().enumerate() {
            let truth = service
                .testbed(id)
                .expect("registered id")
                .expected_fingerprint_matrix(day);
            let err = mean_reconstruction_error(
                service.fingerprint(id).expect("registered id").matrix(),
                &truth,
            )
            .expect("shape");
            errs[k].push(err);
        }
    }

    let mut result = FigureResult {
        id: "ext-fleet".into(),
        title: "Batched update service: per-deployment reconstruction error".into(),
        axes: (
            "update timestamp".into(),
            "mean reconstruction error [dB]".into(),
        ),
        x_labels: TIMESTAMPS.iter().map(|(l, _)| (*l).to_string()).collect(),
        series: Vec::new(),
        notes: Vec::new(),
    };
    for (k, &id) in ids.iter().enumerate() {
        let name = service.name(id).expect("registered id").to_string();
        result.series.push(Series::from_ys(name, &errs[k]));
    }
    result.notes.push(format!(
        "{} deployments updated per cycle through the batched service",
        ids.len()
    ));
    result
}

/// Runs the rebase-heavy variant of the fleet campaign: after every
/// committed cycle, each deployment's correlation engine is re-anchored
/// on its freshest database via [`UpdateService::rebase`] — the
/// warm-start path (certified MIC re-pivoting plus the LRR exactness
/// certificate on the exactly-low-rank rebased prior), which stays
/// within 1e-9 of from-scratch engine construction (see
/// `core/tests/warm_start_parity.rs`). The long-campaign shape this
/// models: with periodic re-anchoring, the correlation `Z` tracks slow
/// environment change instead of staying pinned to the day-0 survey.
pub fn run_rebase_heavy() -> FigureResult {
    let mut service = standard_fleet(crate::scenario::DEFAULT_SEED);
    let ids = service.ids();
    let mut errs: Vec<Vec<f64>> = vec![Vec::new(); ids.len()];
    let mut rebases = 0usize;

    for &(_, day) in TIMESTAMPS.iter() {
        let outcomes = service.run_cycle(day, UPDATE_SAMPLES).expect("fleet cycle");
        assert_eq!(outcomes.len(), ids.len());
        for (k, &id) in ids.iter().enumerate() {
            let truth = service
                .testbed(id)
                .expect("registered id")
                .expected_fingerprint_matrix(day);
            let err = mean_reconstruction_error(
                service.fingerprint(id).expect("registered id").matrix(),
                &truth,
            )
            .expect("shape");
            errs[k].push(err);
            service.rebase(id).expect("warm rebase");
            rebases += 1;
        }
    }

    let mut result = FigureResult {
        id: "ext-fleet-rebase".into(),
        title: "Rebase-heavy fleet: error with per-cycle engine re-anchoring".into(),
        axes: (
            "update timestamp".into(),
            "mean reconstruction error [dB]".into(),
        ),
        x_labels: TIMESTAMPS.iter().map(|(l, _)| (*l).to_string()).collect(),
        series: Vec::new(),
        notes: Vec::new(),
    };
    for (k, &id) in ids.iter().enumerate() {
        let name = service.name(id).expect("registered id").to_string();
        result.series.push(Series::from_ys(name, &errs[k]));
    }
    result.notes.push(format!(
        "{rebases} warm-start rebases ({} deployments x {} timestamps); each \
         engine re-anchored on its freshest database after every cycle",
        ids.len(),
        TIMESTAMPS.len()
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_campaign_produces_bounded_errors() {
        let result = run();
        assert_eq!(result.series.len(), 3);
        for s in &result.series {
            assert_eq!(s.points.len(), TIMESTAMPS.len());
            for &(_, y) in &s.points {
                assert!(
                    y.is_finite() && (0.0..6.0).contains(&y),
                    "{}: {y} dB",
                    s.label
                );
            }
        }
    }

    #[test]
    fn rebase_heavy_campaign_produces_bounded_errors() {
        let result = run_rebase_heavy();
        assert_eq!(result.series.len(), 3);
        for s in &result.series {
            assert_eq!(s.points.len(), TIMESTAMPS.len());
            for &(_, y) in &s.points {
                assert!(
                    y.is_finite() && (0.0..6.0).contains(&y),
                    "{}: {y} dB",
                    s.label
                );
            }
        }
        assert!(result.notes[0].contains("warm-start rebases"));
    }

    #[test]
    fn rebase_heavy_rebases_match_from_scratch_engines() {
        // The eval-level echo of the golden parity tier: after a
        // service rebase, the engine equals a hand-built from-scratch
        // Updater on the same database — exactly when the pivots are
        // unambiguous, or as a tie-certified keep of the incumbent
        // selection (same rank, certified seed, from-scratch LRR fit
        // on the kept locations) when the from-scratch greedy flickers.
        use iupdater_core::correlation::{correlation_matrix, CorrelationMethod};
        use iupdater_linalg::qr::PIVOT_DRIFT_TOL;

        let mut service = standard_fleet(crate::scenario::DEFAULT_SEED);
        service.run_cycle(45.0, UPDATE_SAMPLES).unwrap();
        for id in service.ids() {
            let prior = service.fingerprint(id).unwrap().clone();
            let cold = iupdater_core::Updater::new(
                prior.clone(),
                service.updater(id).unwrap().config().clone(),
            )
            .unwrap();
            let prev_refs = service.updater(id).unwrap().reference_locations().to_vec();
            service.rebase(id).unwrap();
            let warm = service.updater(id).unwrap();
            assert_eq!(
                warm.reference_locations().len(),
                cold.reference_locations().len()
            );
            if warm.reference_locations() == cold.reference_locations() {
                assert!(warm.correlation().approx_eq(cold.correlation(), 0.0));
            } else {
                assert_eq!(warm.reference_locations(), &prev_refs[..]);
                assert!(prior
                    .matrix()
                    .certify_pivot_seed(
                        warm.seed_locations(),
                        warm.config().rank_tol,
                        PIVOT_DRIFT_TOL,
                    )
                    .unwrap()
                    .is_some());
                let vectors = prior.matrix().select_cols(warm.reference_locations());
                let z = correlation_matrix(&vectors, prior.matrix(), CorrelationMethod::default())
                    .unwrap();
                assert!(warm.correlation().approx_eq(&z, 0.0));
            }
        }
    }

    #[test]
    fn fleet_matches_single_deployment_updater() {
        // The service's office deployment must reconstruct exactly what
        // a hand-driven Updater produces from the same testbed state.
        let mut service = standard_fleet(crate::scenario::DEFAULT_SEED);
        let id = service
            .ids()
            .into_iter()
            .find(|&id| service.name(id).unwrap() == "office")
            .expect("office in fleet");
        service.run_cycle(45.0, UPDATE_SAMPLES).unwrap();

        let manual = service
            .updater(id)
            .unwrap()
            .update_from_testbed(service.testbed(id).unwrap(), 45.0, UPDATE_SAMPLES)
            .unwrap();
        assert!(service
            .fingerprint(id)
            .unwrap()
            .matrix()
            .approx_eq(manual.matrix(), 0.0));
    }
}
