//! Fig. 24: average localization error against RASS at the five
//! timestamps — iUpdater leads RASS w/ rec., which leads RASS w/o rec.,
//! at every update point.

use crate::report::{FigureResult, Series};
use crate::scenario::{Scenario, TIMESTAMPS};
use iupdater_linalg::stats::mean;

/// Grid stride (keeps the 5-timestamp RASS training sweep fast).
const STRIDE: usize = 2;

/// Regenerates Fig. 24.
pub fn run() -> FigureResult {
    let s = Scenario::office();
    let mut fig = FigureResult::new(
        "fig24",
        "Comparison with RASS over time (average error)",
        "timestamp",
        "localization error [m]",
    );
    fig.x_labels = TIMESTAMPS
        .iter()
        .map(|&(l, _)| format!("{l} later"))
        .collect();
    let mut iu = Vec::new();
    let mut rass_rec = Vec::new();
    let mut rass_stale = Vec::new();
    for (k, &(_, day)) in TIMESTAMPS.iter().enumerate() {
        let rec = s.reconstruct(day);
        let salt = 2400 + 41 * k as u64;
        iu.push(mean(&s.localization_errors(&rec, day, STRIDE, salt)));
        rass_rec.push(mean(&s.rass_errors(&rec, day, STRIDE, salt)));
        rass_stale.push(mean(&s.rass_errors(s.prior(), day, STRIDE, salt)));
    }
    fig.series.push(Series::from_ys("iUpdater", &iu));
    fig.series.push(Series::from_ys("RASS w/ rec.", &rass_rec));
    fig.series
        .push(Series::from_ys("RASS w/o rec.", &rass_stale));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iupdater_leads_at_every_timestamp_on_average() {
        let fig = run();
        let avg = |label: &str| {
            let s = fig.series_by_label(label).expect("series");
            s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len() as f64
        };
        let iu = avg("iUpdater");
        let rec = avg("RASS w/ rec.");
        let stale = avg("RASS w/o rec.");
        assert!(
            iu < rec,
            "iUpdater ({iu} m) should lead RASS w/ rec ({rec} m)"
        );
        assert!(
            rec < stale,
            "RASS w/ rec ({rec} m) should lead RASS w/o rec ({stale} m)"
        );
    }

    #[test]
    fn three_series_five_points() {
        let fig = run();
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.points.len(), 5);
            for p in &s.points {
                assert!((0.0..6.0).contains(&p.1), "{}: {} m", s.label, p.1);
            }
        }
    }
}
