//! Extension experiment (not in the paper): durability of the batched
//! [`UpdateService`] — a fleet is **killed mid-campaign**, serialised
//! through the v2 snapshot format, restored, and driven to the end of
//! the paper's update schedule. The experiment asserts the restored
//! fleet's databases and cycle counters are *identical* (`approx_eq`
//! at tolerance 0.0) to an uninterrupted control fleet at every
//! remaining timestamp: checkpoint/restore must be invisible to the
//! reconstruction pipeline, or a gateway restart would silently fork a
//! deployment's database history.

use crate::ext_fleet::standard_fleet;
use crate::report::{FigureResult, Series};
use crate::scenario::{TIMESTAMPS, UPDATE_SAMPLES};
use iupdater_core::metrics::mean_reconstruction_error;
use iupdater_core::persist;
use iupdater_core::prelude::*;

/// Number of update cycles run before the fleet is killed.
pub const KILL_AFTER: usize = 2;

/// Runs the kill/restore campaign (see module docs): reconstruction
/// error per deployment across all timestamps, with the fleet
/// serialised to bytes and restored after [`KILL_AFTER`] cycles.
///
/// # Panics
///
/// Panics if the restored fleet diverges from the uninterrupted
/// control in any database entry or cycle counter.
pub fn run() -> FigureResult {
    let mut control = standard_fleet(crate::scenario::DEFAULT_SEED);
    let mut survivor = standard_fleet(crate::scenario::DEFAULT_SEED);
    let ids = control.ids();
    let mut errs: Vec<Vec<f64>> = vec![Vec::new(); ids.len()];

    for &(_, day) in TIMESTAMPS.iter().take(KILL_AFTER) {
        control
            .run_cycle(day, UPDATE_SAMPLES)
            .expect("control cycle");
        survivor
            .run_cycle(day, UPDATE_SAMPLES)
            .expect("fleet cycle");
        record_errors(&survivor, day, &mut errs);
    }

    // Kill: checkpoint through the on-disk format, drop the live fleet.
    let mut bytes = Vec::new();
    persist::write_service(&survivor.snapshot(), &mut bytes).expect("serialise snapshot");
    drop(survivor);

    // Resume and finish the campaign.
    let snap = persist::read_service(bytes.as_slice()).expect("parse snapshot");
    let mut resumed = UpdateService::restore(&snap).expect("restore fleet");
    for &(_, day) in TIMESTAMPS.iter().skip(KILL_AFTER) {
        control
            .run_cycle(day, UPDATE_SAMPLES)
            .expect("control cycle");
        resumed
            .run_cycle(day, UPDATE_SAMPLES)
            .expect("resumed cycle");
        record_errors(&resumed, day, &mut errs);

        // Parity at every post-restore timestamp, not just the end.
        for (&a, &b) in control.ids().iter().zip(resumed.ids().iter()) {
            assert!(
                control
                    .fingerprint(a)
                    .expect("registered id")
                    .matrix()
                    .approx_eq(resumed.fingerprint(b).expect("registered id").matrix(), 0.0),
                "restored fleet diverged from the uninterrupted control at day {day}"
            );
            assert_eq!(
                control.cycles_run(a).expect("registered id"),
                resumed.cycles_run(b).expect("registered id"),
            );
            assert_eq!(
                control.last_update_day(a).expect("registered id"),
                resumed.last_update_day(b).expect("registered id"),
            );
        }
    }

    let mut result = FigureResult {
        id: "ext-durability".into(),
        title: "Durable fleet: kill/restore parity across the update campaign".into(),
        axes: (
            "update timestamp".into(),
            "mean reconstruction error [dB]".into(),
        ),
        x_labels: TIMESTAMPS.iter().map(|(l, _)| (*l).to_string()).collect(),
        series: Vec::new(),
        notes: Vec::new(),
    };
    for (k, &id) in resumed.ids().iter().enumerate() {
        let name = resumed.name(id).expect("registered id").to_string();
        result.series.push(Series::from_ys(name, &errs[k]));
    }
    result.notes.push(format!(
        "fleet killed after {KILL_AFTER} cycles, serialised to {} bytes (v2 snapshot), \
         restored, and verified bit-identical to an uninterrupted control at every \
         remaining timestamp",
        bytes.len()
    ));
    result
}

/// Appends each deployment's reconstruction error at `day` to `errs`.
fn record_errors(service: &UpdateService, day: f64, errs: &mut [Vec<f64>]) {
    for (k, id) in service.ids().into_iter().enumerate() {
        let truth = service
            .testbed(id)
            .expect("registered id")
            .expected_fingerprint_matrix(day);
        let err = mean_reconstruction_error(
            service.fingerprint(id).expect("registered id").matrix(),
            &truth,
        )
        .expect("shape");
        errs[k].push(err);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_restore_campaign_matches_uninterrupted_run() {
        // run() panics internally if the restored fleet diverges; the
        // shape checks here pin the reported series.
        let result = run();
        assert_eq!(result.series.len(), 3);
        for s in &result.series {
            assert_eq!(s.points.len(), TIMESTAMPS.len());
            for &(_, y) in &s.points {
                assert!(
                    y.is_finite() && (0.0..6.0).contains(&y),
                    "{}: {y} dB",
                    s.label
                );
            }
        }
        assert!(result.notes[0].contains("bit-identical"));
    }
}
