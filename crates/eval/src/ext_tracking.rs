//! Extension experiment (not in the paper): device-free *tracking* on
//! top of the iUpdater-maintained database — Viterbi decoding vs
//! epoch-independent OMP matching, on stale vs reconstructed databases.
//!
//! This quantifies the end-to-end benefit for the RASS-style tracking
//! application the paper compares against.

use crate::report::{FigureResult, Series};
use crate::scenario::Scenario;
use iupdater_core::prelude::*;
use iupdater_core::tracking::{Tracker, TrackerConfig};
use iupdater_linalg::stats::mean;
use iupdater_rfsim::trajectory::Trajectory;

/// Evaluation day.
pub const EVAL_DAY: f64 = 45.0;

/// Per-epoch tracking errors for a database/decoder combination.
fn run_arm(
    s: &Scenario,
    database: &FingerprintMatrix,
    use_viterbi: bool,
    walk_seed: u64,
) -> Vec<f64> {
    let d = s.testbed().deployment();
    let walk = Trajectory::random_walk(d, d.num_locations() / 2, 60, walk_seed);
    let measurements = walk.measurements(s.testbed(), EVAL_DAY, 6000 + walk_seed);
    let estimates: Vec<usize> = if use_viterbi {
        Tracker::new(database, d, TrackerConfig::default())
            .expect("tracker")
            .track(&measurements)
            .expect("track")
    } else {
        let localizer = Localizer::new(database.clone(), LocalizerConfig::default());
        (0..measurements.rows())
            .map(|k| {
                localizer
                    .localize(measurements.row(k))
                    .expect("localize")
                    .grid
            })
            .collect()
    };
    walk.cells()
        .iter()
        .zip(&estimates)
        .map(|(&t, &e)| d.location(t).distance(d.location(e)))
        .collect()
}

/// Runs the tracking extension experiment.
pub fn run() -> FigureResult {
    let s = Scenario::office();
    let fresh = s.reconstruct(EVAL_DAY);
    let stale = s.prior().clone();

    let mut fig = FigureResult::new(
        "ext-tracking",
        "Tracking extension: Viterbi vs independent matching at 45 days",
        "walk realisation",
        "mean tracking error [m]",
    );
    let arms: [(&str, &FingerprintMatrix, bool); 4] = [
        ("iUpdater + Viterbi", &fresh, true),
        ("iUpdater + independent", &fresh, false),
        ("stale + Viterbi", &stale, true),
        ("stale + independent", &stale, false),
    ];
    for (label, db, viterbi) in arms {
        let ys: Vec<f64> = (0..4)
            .map(|k| mean(&run_arm(&s, db, viterbi, 100 + k)))
            .collect();
        fig.notes
            .push(format!("{label}: mean over walks {:.2} m", mean(&ys)));
        fig.series.push(Series::from_ys(label, &ys));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn viterbi_on_fresh_database_wins() {
        let fig = run();
        let avg = |label: &str| {
            let s = fig.series_by_label(label).expect("series");
            s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len() as f64
        };
        let best = avg("iUpdater + Viterbi");
        let fresh_indep = avg("iUpdater + independent");
        let stale_vit = avg("stale + Viterbi");
        assert!(
            best <= fresh_indep,
            "Viterbi ({best:.2} m) must not lose to independent matching ({fresh_indep:.2} m)"
        );
        assert!(
            best <= stale_vit,
            "fresh database ({best:.2} m) must not lose to stale ({stale_vit:.2} m)"
        );
        assert!(best < 2.0, "headline tracking error {best:.2} m");
    }
}
