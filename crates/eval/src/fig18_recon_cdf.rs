//! Fig. 18: reconstruction-error CDFs of the full iUpdater method at the
//! five update timestamps (paper medians in the office: 2.7, 2.5, 3.3,
//! 3.6 and 4.1 dB — errors grow mildly with elapsed time).

use crate::report::{FigureResult, Series};
use crate::scenario::{Scenario, TIMESTAMPS};
use iupdater_core::metrics::reconstruction_errors;
use iupdater_linalg::stats::{median, Ecdf};

/// Regenerates Fig. 18.
pub fn run() -> FigureResult {
    let s = Scenario::office();
    let mut fig = FigureResult::new(
        "fig18",
        "Fingerprint reconstruction error CDFs at five timestamps",
        "reconstruction error [dB]",
        "CDF",
    );
    for &(label, day) in TIMESTAMPS.iter() {
        let rec = s.reconstruct(day);
        let errs = reconstruction_errors(rec.matrix(), &s.ground_truth(day)).expect("shapes");
        let ecdf = Ecdf::new(&errs);
        fig.series.push(Series::from_points(
            format!("{label} later"),
            ecdf.curve(60),
        ));
        fig.notes
            .push(format!("{label} later: median {:.2} dB", median(&errs)));
    }
    fig.notes
        .push("paper medians: 2.7 / 2.5 / 3.3 / 3.6 / 4.1 dB".into());
    fig
}

/// Median reconstruction error at each timestamp.
pub fn medians() -> Vec<f64> {
    let s = Scenario::office();
    TIMESTAMPS
        .iter()
        .map(|&(_, day)| {
            let rec = s.reconstruct(day);
            let errs = reconstruction_errors(rec.matrix(), &s.ground_truth(day)).expect("shapes");
            median(&errs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medians_in_paper_ballpark_and_growing() {
        let meds = medians();
        assert_eq!(meds.len(), 5);
        // Absolute scale: low single-digit dB, like the paper's 2.5-4.1.
        for (k, m) in meds.iter().enumerate() {
            assert!((0.2..6.0).contains(m), "timestamp {k}: median {m} dB");
        }
        // Long-horizon errors exceed short-horizon ones (mild growth).
        let early = (meds[0] + meds[1]) / 2.0;
        let late = (meds[3] + meds[4]) / 2.0;
        assert!(
            late >= early * 0.8,
            "errors should not collapse over time: early {early}, late {late}"
        );
    }

    #[test]
    fn cdfs_monotone() {
        let fig = run();
        assert_eq!(fig.series.len(), 5);
        for s in &fig.series {
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9);
            }
        }
    }
}
