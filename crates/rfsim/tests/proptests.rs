//! Property-based tests for the RF simulator's physical invariants.

use iupdater_rfsim::fresnel::{first_zone_radius, knife_edge_loss_db, knife_edge_v};
use iupdater_rfsim::geometry::{Point, Segment};
use iupdater_rfsim::labor::LaborModel;
use iupdater_rfsim::pathloss::{dbm_to_mw, mw_to_dbm, LogDistanceModel};
use iupdater_rfsim::target::Target;
use iupdater_rfsim::{Environment, Testbed};
use proptest::prelude::*;

proptest! {
    #[test]
    fn pathloss_monotone_in_distance(d1 in 1.0f64..50.0, d2 in 1.0f64..50.0) {
        let m = LogDistanceModel::default();
        let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(m.loss_db(near) <= m.loss_db(far));
    }

    #[test]
    fn dbm_mw_roundtrip(dbm in -120.0f64..30.0) {
        prop_assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
    }

    #[test]
    fn fresnel_radius_symmetric_and_bounded(
        lambda in 0.05f64..0.5,
        d1 in 0.1f64..20.0,
        d2 in 0.1f64..20.0,
    ) {
        let r12 = first_zone_radius(lambda, d1, d2);
        let r21 = first_zone_radius(lambda, d2, d1);
        prop_assert!((r12 - r21).abs() < 1e-12, "radius must be symmetric");
        // Bounded by the radius at the midpoint of an equal-length link.
        let total = d1 + d2;
        let mid = first_zone_radius(lambda, total / 2.0, total / 2.0);
        prop_assert!(r12 <= mid + 1e-12);
    }

    #[test]
    fn knife_edge_v_sign_follows_clearance(h in -2.0f64..2.0, d1 in 0.5f64..10.0, d2 in 0.5f64..10.0) {
        let v = knife_edge_v(h, 0.125, d1, d2);
        if h > 0.0 {
            prop_assert!(v > 0.0);
        } else if h < 0.0 {
            prop_assert!(v < 0.0);
        }
    }

    #[test]
    fn knife_edge_loss_bounded(v in -5.0f64..10.0) {
        let loss = knife_edge_loss_db(v);
        prop_assert!(loss.is_finite());
        prop_assert!(loss > -2.0, "oscillation gain bounded");
        prop_assert!(loss < 40.0, "plausible single-edge loss");
    }

    #[test]
    fn target_attenuation_nonnegative_and_bounded(
        x in 0.0f64..10.0,
        y in -3.0f64..3.0,
    ) {
        let link = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let t = Target::person();
        let a = t.attenuation_db(link, Point::new(x, y), 0.125);
        prop_assert!(a >= 0.0);
        prop_assert!(a < 40.0, "attenuation {a} dB implausible");
    }

    #[test]
    fn segment_projection_clamped(ax in -5.0f64..5.0, ay in -5.0f64..5.0, px in -10.0f64..20.0, py in -10.0f64..10.0) {
        let s = Segment::new(Point::new(ax, ay), Point::new(ax + 10.0, ay));
        let t = s.project(Point::new(px, py));
        prop_assert!((0.0..=1.0).contains(&t));
        let (d1, d2) = s.split_distances(Point::new(px, py));
        prop_assert!((d1 + d2 - s.length()).abs() < 1e-9);
    }

    #[test]
    fn labor_cost_monotone(locations in 1usize..500, samples in 1usize..100) {
        let m = LaborModel::default();
        let base = m.survey_time_s(locations, samples);
        prop_assert!(m.survey_time_s(locations + 1, samples) > base);
        prop_assert!(m.survey_time_s(locations, samples + 1) > base);
        prop_assert!(base > 0.0);
    }

    #[test]
    fn expected_rss_continuous_in_day(seed in 0u64..300, day in 0.5f64..89.0) {
        // No jumps on the sub-day scale: drift interpolates, multipath is
        // smooth in time.
        let t = Testbed::new(Environment::office(), seed);
        let a = t.expected_rss(3, 40, day);
        let b = t.expected_rss(3, 40, day + 0.01);
        prop_assert!((a - b).abs() < 0.6, "sub-day RSS jump {} dB", (a - b).abs());
    }

    #[test]
    fn own_row_attenuation_dominates(seed in 0u64..300) {
        // A target on link i's own row attenuates link i more than any
        // other link (the fingerprint's block structure).
        let t = Testbed::new(Environment::office(), seed);
        let d = t.deployment();
        let j = d.location_index(4, 6);
        let empty: Vec<f64> = (0..8).map(|i| t.expected_rss_empty(i, 0.0)).collect();
        let dips: Vec<f64> = (0..8).map(|i| empty[i] - t.expected_rss(i, j, 0.0)).collect();
        let own = dips[4];
        for (i, &dip) in dips.iter().enumerate() {
            if i != 4 {
                prop_assert!(own > dip, "own-row dip {own} vs link {i} dip {dip}");
            }
        }
    }

    #[test]
    fn multi_target_superposition_consistent(seed in 0u64..200) {
        // With a single target the multi API equals the single API.
        let t = Testbed::new(Environment::office(), seed);
        let single = t.expected_rss(2, 30, 5.0);
        let multi = t.expected_rss_multi(2, &[30], 5.0);
        prop_assert!((single - multi).abs() < 1e-9);
        // Two targets attenuate at least as much as the stronger one on
        // any link (dB superposition).
        let both = t.expected_rss_multi(2, &[30, 70], 5.0);
        let other = t.expected_rss_multi(2, &[70], 5.0);
        prop_assert!(both <= single.max(other) + 3.0);
    }
}
