//! Long-term RSS drift: slow environmental change over days to months
//! (paper Fig. 2: ~2.5 dB shift after 5 days, ~6 dB after 45 days).
//!
//! Drift is decomposed into a **global** (environment-wide) component and
//! a small **per-link** component. This decomposition is the physical
//! reason the paper's Observations 2 and 3 hold: RSS *differences*
//! between neighbouring locations on the same link cancel the entire
//! drift, and differences between adjacent links cancel the global part.

use iupdater_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::noise::gaussian;

/// Long-term drift model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftModel {
    /// Standard deviation of the *global* daily random-walk increment (dB).
    pub global_daily_sigma: f64,
    /// Standard deviation of the *per-link* daily random-walk increment (dB).
    pub link_daily_sigma: f64,
    /// Amplitude of a slow global seasonal oscillation (dB).
    pub seasonal_amp_db: f64,
    /// Period of the seasonal oscillation in days.
    pub seasonal_period_days: f64,
}

impl Default for DriftModel {
    /// Calibrated so the mean absolute shift is ~2.5 dB after 5 days and
    /// ~6 dB after 45 days (paper Fig. 2).
    fn default() -> Self {
        DriftModel {
            global_daily_sigma: 0.95,
            link_daily_sigma: 0.05,
            seasonal_amp_db: 1.5,
            seasonal_period_days: 60.0,
        }
    }
}

/// A realised drift trajectory for `num_links` links, sampled daily.
///
/// The trajectory is generated once (deterministically from a seed) and
/// then queried at arbitrary day offsets; queries interpolate linearly
/// between daily knots.
#[derive(Debug, Clone)]
pub struct DriftProcess {
    model: DriftModel,
    /// `global[d]` = global drift at day `d`.
    global: Vec<f64>,
    /// Row `l`, column `d` = per-link drift of link `l` at day `d`.
    per_link: Matrix,
}

impl DriftProcess {
    /// Generates a trajectory covering `0..=horizon_days` for
    /// `num_links` links.
    ///
    /// # Panics
    ///
    /// Panics if `num_links == 0` or `horizon_days == 0`.
    pub fn generate(model: DriftModel, num_links: usize, horizon_days: usize, seed: u64) -> Self {
        assert!(num_links > 0, "need at least one link");
        assert!(horizon_days > 0, "need a positive horizon");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut global = Vec::with_capacity(horizon_days + 1);
        let mut acc = 0.0;
        global.push(0.0);
        for _ in 0..horizon_days {
            acc += gaussian(&mut rng) * model.global_daily_sigma;
            global.push(acc);
        }
        let mut per_link = Matrix::zeros(num_links, horizon_days + 1);
        for l in 0..num_links {
            let mut acc = 0.0;
            let row = per_link.row_mut(l);
            for knot in row.iter_mut().skip(1) {
                acc += gaussian(&mut rng) * model.link_daily_sigma;
                *knot = acc;
            }
        }
        DriftProcess {
            model,
            global,
            per_link,
        }
    }

    /// Number of links the trajectory covers.
    pub fn num_links(&self) -> usize {
        self.per_link.rows()
    }

    /// Horizon in days.
    pub fn horizon_days(&self) -> usize {
        self.global.len() - 1
    }

    /// Total drift (dB) applied to link `link` at continuous day offset
    /// `day` (clamped to the generated horizon).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn drift_db(&self, link: usize, day: f64) -> f64 {
        assert!(link < self.per_link.rows(), "link {link} out of range");
        let seasonal = self.model.seasonal_amp_db
            * (2.0 * std::f64::consts::PI * day / self.model.seasonal_period_days).sin();
        self.interp(&self.global, day) + self.interp(self.per_link.row(link), day) + seasonal
    }

    /// Only the global (environment-wide) component at `day`.
    pub fn global_drift_db(&self, day: f64) -> f64 {
        let seasonal = self.model.seasonal_amp_db
            * (2.0 * std::f64::consts::PI * day / self.model.seasonal_period_days).sin();
        self.interp(&self.global, day) + seasonal
    }

    fn interp(&self, knots: &[f64], day: f64) -> f64 {
        let max_day = (knots.len() - 1) as f64;
        let d = day.clamp(0.0, max_day);
        let lo = d.floor() as usize;
        let hi = d.ceil() as usize;
        if lo == hi {
            knots[lo]
        } else {
            let frac = d - lo as f64;
            knots[lo] * (1.0 - frac) + knots[hi] * frac
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_zero_at_day_zero() {
        let p = DriftProcess::generate(DriftModel::default(), 8, 90, 1);
        for l in 0..8 {
            assert_eq!(p.drift_db(l, 0.0), 0.0);
        }
    }

    #[test]
    fn drift_magnitudes_match_paper_scale() {
        // Average |drift| over many seeds: ~2-3 dB at 5 days, ~4-8 dB at
        // 45 days (Fig. 2 reports 2.5 and 6 dB for one deployment).
        let mut d5 = 0.0;
        let mut d45 = 0.0;
        let trials = 200;
        for seed in 0..trials {
            let p = DriftProcess::generate(DriftModel::default(), 1, 90, seed);
            d5 += p.drift_db(0, 5.0).abs();
            d45 += p.drift_db(0, 45.0).abs();
        }
        d5 /= trials as f64;
        d45 /= trials as f64;
        assert!((1.5..4.0).contains(&d5), "mean |drift@5d| = {d5}");
        assert!((4.0..9.0).contains(&d45), "mean |drift@45d| = {d45}");
        assert!(d45 > d5, "drift must grow with time");
    }

    #[test]
    fn per_link_component_small_relative_to_global() {
        // Adjacent-link similarity (Obs. 3) requires the per-link part to
        // be a minor fraction of the total drift.
        let trials = 100;
        let mut global_mag = 0.0;
        let mut link_spread = 0.0;
        for seed in 0..trials {
            let p = DriftProcess::generate(DriftModel::default(), 2, 45, seed);
            global_mag += p.global_drift_db(45.0).abs();
            link_spread += (p.drift_db(0, 45.0) - p.drift_db(1, 45.0)).abs();
        }
        assert!(
            link_spread < global_mag,
            "per-link spread {link_spread} should stay below global magnitude {global_mag}"
        );
    }

    #[test]
    fn interpolation_between_days() {
        let p = DriftProcess::generate(DriftModel::default(), 1, 10, 3);
        let a = p.drift_db(0, 2.0);
        let b = p.drift_db(0, 3.0);
        let mid = p.drift_db(0, 2.5);
        // Seasonal term is smooth, random walk is linear between knots:
        // mid must sit between a and b up to the seasonal curvature.
        let lo = a.min(b) - 0.2;
        let hi = a.max(b) + 0.2;
        assert!((lo..=hi).contains(&mid), "mid {mid} outside [{lo}, {hi}]");
    }

    #[test]
    fn clamps_beyond_horizon() {
        let p = DriftProcess::generate(DriftModel::default(), 1, 10, 4);
        // Seasonal component continues but random walk clamps; just check
        // no panic and finite values.
        assert!(p.drift_db(0, 500.0).is_finite());
        assert!(p.drift_db(0, -5.0).is_finite());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DriftProcess::generate(DriftModel::default(), 3, 30, 9);
        let b = DriftProcess::generate(DriftModel::default(), 3, 30, 9);
        assert_eq!(a.drift_db(2, 17.3), b.drift_db(2, 17.3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn link_out_of_range_panics() {
        let p = DriftProcess::generate(DriftModel::default(), 2, 10, 1);
        let _ = p.drift_db(2, 1.0);
    }
}
