//! Log-distance path loss and dBm conversions for 2.4 GHz Wi-Fi links.

/// Speed of light in m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Default Wi-Fi channel-1 carrier frequency in Hz (2.412 GHz).
pub const WIFI_24_GHZ: f64 = 2.412e9;

/// Wavelength in metres for a carrier frequency in Hz.
///
/// # Panics
///
/// Panics if `freq_hz <= 0`.
pub fn wavelength(freq_hz: f64) -> f64 {
    assert!(freq_hz > 0.0, "frequency must be positive");
    SPEED_OF_LIGHT / freq_hz
}

/// Free-space path loss in dB at distance `d` metres and frequency
/// `freq_hz` (the `d = d0 = 1 m` anchor of the log-distance model).
///
/// # Panics
///
/// Panics if `d <= 0` or `freq_hz <= 0`.
pub fn free_space_loss_db(d: f64, freq_hz: f64) -> f64 {
    assert!(d > 0.0, "distance must be positive");
    let lambda = wavelength(freq_hz);
    20.0 * (4.0 * std::f64::consts::PI * d / lambda).log10()
}

/// Log-distance path-loss model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistanceModel {
    /// Carrier frequency in Hz.
    pub freq_hz: f64,
    /// Path-loss exponent (2 free space, 2.5-4 indoor).
    pub exponent: f64,
    /// Reference distance in metres (typically 1 m).
    pub d0: f64,
}

impl LogDistanceModel {
    /// Indoor 2.4 GHz defaults with the given exponent.
    pub fn indoor(exponent: f64) -> Self {
        LogDistanceModel {
            freq_hz: WIFI_24_GHZ,
            exponent,
            d0: 1.0,
        }
    }

    /// Path loss in dB at distance `d` metres.
    ///
    /// Distances below `d0` are clamped to `d0` (near-field is out of
    /// scope for this model).
    pub fn loss_db(&self, d: f64) -> f64 {
        let d = d.max(self.d0);
        free_space_loss_db(self.d0, self.freq_hz) + 10.0 * self.exponent * (d / self.d0).log10()
    }

    /// Received power in dBm given transmit power `tx_dbm`.
    pub fn rss_dbm(&self, tx_dbm: f64, d: f64) -> f64 {
        tx_dbm - self.loss_db(d)
    }
}

impl Default for LogDistanceModel {
    /// Indoor office defaults: 2.4 GHz, exponent 3.0, `d0` = 1 m.
    fn default() -> Self {
        LogDistanceModel::indoor(3.0)
    }
}

/// Converts dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10.0_f64.powf(dbm / 10.0)
}

/// Converts milliwatts to dBm.
///
/// # Panics
///
/// Panics if `mw <= 0`.
pub fn mw_to_dbm(mw: f64) -> f64 {
    assert!(mw > 0.0, "power must be positive");
    10.0 * mw.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_at_24ghz() {
        let l = wavelength(WIFI_24_GHZ);
        assert!((l - 0.1243).abs() < 1e-3, "lambda = {l}");
    }

    #[test]
    fn free_space_loss_at_1m_24ghz() {
        // Known figure: ~40.05 dB at 1 m, 2.4 GHz.
        let loss = free_space_loss_db(1.0, WIFI_24_GHZ);
        assert!((loss - 40.1).abs() < 0.3, "loss = {loss}");
    }

    #[test]
    fn loss_increases_with_distance() {
        let m = LogDistanceModel::default();
        assert!(m.loss_db(10.0) > m.loss_db(5.0));
        // Exponent 3 => 30 dB per decade.
        let per_decade = m.loss_db(10.0) - m.loss_db(1.0);
        assert!((per_decade - 30.0).abs() < 1e-9);
    }

    #[test]
    fn near_field_clamped() {
        let m = LogDistanceModel::default();
        assert_eq!(m.loss_db(0.1), m.loss_db(1.0));
    }

    #[test]
    fn rss_is_tx_minus_loss() {
        let m = LogDistanceModel::default();
        let rss = m.rss_dbm(15.0, 5.0);
        assert!((rss - (15.0 - m.loss_db(5.0))).abs() < 1e-12);
        // Sanity: a 5 m indoor link at 15 dBm TX lands in a plausible
        // -40..-80 dBm window.
        assert!(rss < -40.0 && rss > -80.0, "rss = {rss}");
    }

    #[test]
    fn dbm_mw_roundtrip() {
        for dbm in [-90.0, -30.0, 0.0, 20.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-12);
        }
        assert_eq!(dbm_to_mw(0.0), 1.0);
        assert_eq!(dbm_to_mw(10.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_distance_panics() {
        let _ = free_space_loss_db(0.0, WIFI_24_GHZ);
    }
}
