//! The [`Testbed`]: the top-level simulator that synthesises fingerprint
//! matrices (the paper's manual site surveys) and online RSS measurement
//! vectors (the localization inputs).

use iupdater_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::deployment::Deployment;
use crate::drift::DriftProcess;
use crate::environment::Environment;
use crate::multipath::MultipathField;
use crate::noise::{quantize, NoiseModel, NoiseProcess};
use crate::pathloss::wavelength;
use crate::target::ObstructionEffect;

/// Horizon (days) over which the drift trajectory is generated: covers
/// the paper's 3-month campaign with margin.
const DRIFT_HORIZON_DAYS: usize = 120;

/// A simulated deployment: environment + realised random fields.
///
/// All randomness is derived deterministically from the constructor seed,
/// so any experiment is reproducible bit-for-bit.
#[derive(Debug, Clone)]
pub struct Testbed {
    env: Environment,
    deployment: Deployment,
    drift: DriftProcess,
    multipath: MultipathField,
    lambda: f64,
    /// Clean (noise-free, drift-free) baseline RSS per link (empty room).
    baseline_rss: Vec<f64>,
    /// Per-link static hardware gain offsets (NIC/antenna spread).
    link_gain_db: Vec<f64>,
    seed: u64,
}

impl Testbed {
    /// Creates a testbed for `env` with all random fields derived from
    /// `seed`.
    pub fn new(env: Environment, seed: u64) -> Self {
        let deployment = Deployment::new(&env);
        let drift = DriftProcess::generate(
            env.drift,
            env.num_links,
            DRIFT_HORIZON_DAYS,
            seed ^ 0x5eed_d41f,
        );
        let multipath =
            MultipathField::generate(env.multipath, env.width_m, env.height_m, seed ^ 0x0b5e55ed);
        let lambda = wavelength(env.pathloss.freq_hz);
        let mut gain_rng = StdRng::seed_from_u64(seed ^ 0x6a1b_5a1e);
        let link_gain_db: Vec<f64> = (0..env.num_links)
            .map(|_| (gain_rng.gen::<f64>() - 0.5) * 3.0)
            .collect();
        // Per-link static clutter loss: links cross different furniture
        // and obstructions. Modelled as a slowly varying profile across
        // link index (adjacent links cross similar clutter — the physical
        // basis of Obs. 3) plus one structural jump where a partition or
        // shelf row starts, which stretches the across-room RSS span to
        // many dB (the normaliser of the NLC/ALS statistics).
        let mut clutter_rng = StdRng::seed_from_u64(seed ^ 0xc1u64.rotate_left(17));
        let jump_at = 1 + (clutter_rng.gen::<f64>() * (env.num_links.max(2) - 1) as f64) as usize;
        let jump_mag = (0.55 + 0.35 * clutter_rng.gen::<f64>()) * env.link_clutter_db;
        let mut walk = clutter_rng.gen::<f64>() * env.link_clutter_db * 0.2;
        let baseline_rss: Vec<f64> = (0..env.num_links)
            .map(|i| {
                let d = deployment.link(i).length();
                walk += (clutter_rng.gen::<f64>() - 0.5) * 1.4;
                let clutter = (walk.abs() + if i >= jump_at { jump_mag } else { 0.0 })
                    .clamp(0.0, 1.5 * env.link_clutter_db);
                env.pathloss.rss_dbm(env.tx_power_dbm, d) - clutter
            })
            .collect();
        Testbed {
            env,
            deployment,
            drift,
            multipath,
            lambda,
            baseline_rss,
            link_gain_db,
            seed,
        }
    }

    /// The environment this testbed simulates.
    pub fn environment(&self) -> &Environment {
        &self.env
    }

    /// The constructor seed. All testbed randomness derives from it, so
    /// `Testbed::new(env.clone(), seed)` rebuilds this exact testbed —
    /// which is what service snapshots persist.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The link/grid geometry.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Carrier wavelength in metres.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The noiseless, *expected* RSS of link `i` with a target at grid
    /// location `j`, at day offset `day`. This is the ground-truth mean
    /// the fingerprint tries to capture.
    pub fn expected_rss(&self, i: usize, j: usize, day: f64) -> f64 {
        let link = self.deployment.link(i);
        let pos = self.deployment.location(j);
        let attenuation = self.env.target.attenuation_db(link, pos, self.lambda);
        let multipath = self.multipath.with_target_db(link, pos, day);
        self.baseline_rss[i] + self.link_gain_db[i] - attenuation
            + multipath
            + self.drift.drift_db(i, day)
    }

    /// The noiseless empty-room RSS of link `i` at day `day` (no target).
    pub fn expected_rss_empty(&self, i: usize, day: f64) -> f64 {
        let link = self.deployment.link(i);
        let multipath = self.multipath.ambient_db(link, day);
        self.baseline_rss[i] + self.link_gain_db[i] + multipath + self.drift.drift_db(i, day)
    }

    /// One noisy RSS sample of link `i` with a target at `j`, at `day`,
    /// using the supplied noise process.
    pub fn sample_rss(&self, i: usize, j: usize, day: f64, noise: &mut NoiseProcess) -> f64 {
        let clean = self.expected_rss(i, j, day);
        let sample = clean + noise.next_sample();
        noise.quantize(sample)
    }

    /// Collects a full fingerprint matrix at day offset `day`, averaging
    /// `samples` noisy readings per element (the paper's site survey:
    /// traditional systems use ~50 samples, iUpdater 5).
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn fingerprint_matrix(&self, day: f64, samples: usize) -> Matrix {
        assert!(samples > 0, "need at least one sample per element");
        let m = self.deployment.num_links();
        let n = self.deployment.num_locations();
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            // Independent noise process per link, re-seeded per survey so
            // different days see different noise.
            let mut noise = self.noise_process(i, day);
            for j in 0..n {
                let mut acc = 0.0;
                for _ in 0..samples {
                    acc += self.sample_rss(i, j, day, &mut noise);
                }
                out[(i, j)] = quantize(acc / samples as f64, 0.0);
            }
        }
        out
    }

    /// The noiseless expected fingerprint matrix at `day` (used as the
    /// reconstruction ground truth).
    pub fn expected_fingerprint_matrix(&self, day: f64) -> Matrix {
        let m = self.deployment.num_links();
        let n = self.deployment.num_locations();
        Matrix::from_fn(m, n, |i, j| self.expected_rss(i, j, day))
    }

    /// Collects fresh measurement columns for the given grid locations at
    /// `day`, averaging `samples` readings — the paper's *reference
    /// matrix* `X_R` (Eq. 13).
    pub fn measure_columns(&self, locations: &[usize], day: f64, samples: usize) -> Matrix {
        assert!(samples > 0, "need at least one sample per element");
        let m = self.deployment.num_links();
        let mut out = Matrix::zeros(m, locations.len());
        for i in 0..m {
            let mut noise = self.noise_process(i, day);
            for (k, &j) in locations.iter().enumerate() {
                let mut acc = 0.0;
                for _ in 0..samples {
                    acc += self.sample_rss(i, j, day, &mut noise);
                }
                out[(i, k)] = acc / samples as f64;
            }
        }
        out
    }

    /// Measures link `i`'s empty-room RSS at `day`, averaging `samples`
    /// noisy readings — the labor-free collection behind the
    /// no-decrease matrix `X_B` (the target need not be present).
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn measure_empty(&self, i: usize, day: f64, samples: usize) -> f64 {
        assert!(samples > 0, "need at least one sample");
        let mut noise = self.noise_process(i, day + 0.003); // offset: separate survey pass
        let clean = self.expected_rss_empty(i, day);
        let mut acc = 0.0;
        for _ in 0..samples {
            let s = clean + noise.next_sample();
            acc += noise.quantize(s);
        }
        acc / samples as f64
    }

    /// A single online measurement vector `y` with a target at grid `j`
    /// at `day` (Eq. 25): one noisy sample per link, as a real-time
    /// localization would see.
    pub fn online_measurement(&self, j: usize, day: f64, probe_seed: u64) -> Vec<f64> {
        (0..self.deployment.num_links())
            .map(|i| {
                let mut noise = NoiseProcess::new(
                    self.env.noise,
                    self.seed
                        ^ probe_seed
                            .wrapping_add((i as u64) << 32)
                            .wrapping_add(j as u64),
                );
                // Warm the AR(1) state so the sample is stationary.
                for _ in 0..8 {
                    noise.next_sample();
                }
                self.sample_rss(i, j, day, &mut noise)
            })
            .collect()
    }

    /// The noiseless expected RSS of link `i` with *several* targets
    /// present (an extension beyond the paper's single-target model, in
    /// the spirit of its multi-target related work): obstruction
    /// attenuations and multipath signatures superpose in dB — the
    /// standard first-order approximation for well-separated bodies.
    pub fn expected_rss_multi(&self, i: usize, targets: &[usize], day: f64) -> f64 {
        let link = self.deployment.link(i);
        let mut rss = self.expected_rss_empty(i, day);
        for &j in targets {
            let pos = self.deployment.location(j);
            rss -= self.env.target.attenuation_db(link, pos, self.lambda);
            rss += self.multipath.target_db(link, pos, day);
        }
        rss
    }

    /// One noisy online measurement vector with several targets present.
    pub fn online_measurement_multi(
        &self,
        targets: &[usize],
        day: f64,
        probe_seed: u64,
    ) -> Vec<f64> {
        (0..self.deployment.num_links())
            .map(|i| {
                let mut noise = NoiseProcess::new(
                    self.env.noise,
                    self.seed ^ probe_seed.wrapping_add((i as u64) << 32),
                );
                for _ in 0..8 {
                    noise.next_sample();
                }
                let clean = self.expected_rss_multi(i, targets, day);
                let sample = clean + noise.next_sample();
                noise.quantize(sample)
            })
            .collect()
    }

    /// Classifies the effect of a target at grid `j` on link `i`
    /// (Fig. 4's large/small/no-decrease cell colouring).
    pub fn obstruction_effect(&self, i: usize, j: usize) -> ObstructionEffect {
        let link = self.deployment.link(i);
        let pos = self.deployment.location(j);
        self.env.target.effect(link, pos, self.lambda)
    }

    /// RSS trace of link `i` with the target parked at grid `j`:
    /// `n` consecutive samples at the survey sampling rate (Fig. 1's
    /// 100 s trace is `n = 200` at 0.5 s).
    pub fn rss_trace(&self, i: usize, j: usize, day: f64, n: usize) -> Vec<f64> {
        let mut noise = self.noise_process(i, day);
        (0..n)
            .map(|_| self.sample_rss(i, j, day, &mut noise))
            .collect()
    }

    /// Samples several (link, grid) cells at the *same* instants for `n`
    /// ticks: per-link AR(1) jitter plus an interference-burst process
    /// shared across links (RF interference is broadcast, which is why
    /// adjacent-link RSS *differences* stay stable — Obs. 3 / Fig. 6).
    ///
    /// Returns one trace per requested cell, as the rows of a
    /// `cells.len() x n` matrix.
    pub fn synced_traces(&self, cells: &[(usize, usize)], day: f64, n: usize) -> Matrix {
        // BTreeMap keeps per-link iteration in link order, so trace
        // generation is deterministic across runs and platforms.
        let mut link_noise: std::collections::BTreeMap<usize, NoiseProcess> = cells
            .iter()
            .map(|&(i, _)| {
                // Jitter-only process (bursts are handled shared, below).
                let model = NoiseModel {
                    burst_prob: 0.0,
                    ..self.env.noise
                };
                (
                    i,
                    NoiseProcess::new(
                        model,
                        self.seed
                            .wrapping_mul(0x2545_f491_4f6c_dd1d)
                            .wrapping_add(i as u64),
                    ),
                )
            })
            .collect();
        let mut burst_rng =
            StdRng::seed_from_u64(self.seed ^ 0xb0b5_7ead ^ ((day * 64.0).round() as i64 as u64));
        let mut traces = Matrix::zeros(cells.len(), n);
        for tick in 0..n {
            // Shared burst for this instant.
            let burst = if burst_rng.gen::<f64>() < self.env.noise.burst_prob * 2.0 {
                -(0.5 + burst_rng.gen::<f64>() * (self.env.noise.burst_max_db - 0.5).max(0.0))
            } else {
                0.0
            };
            for (k, &(i, j)) in cells.iter().enumerate() {
                let clean = self.expected_rss(i, j, day);
                let jitter = link_noise
                    .get_mut(&i)
                    .expect("process inserted above")
                    .next_sample();
                traces[(k, tick)] = quantize(clean + jitter + burst, self.env.noise.quantize_db);
            }
        }
        traces
    }

    fn noise_process(&self, link: usize, day: f64) -> NoiseProcess {
        let day_key = (day * 64.0).round() as i64 as u64;
        NoiseProcess::new(
            self.env.noise,
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((link as u64) << 40)
                .wrapping_add(day_key),
        )
    }

    /// The noise model in force (useful for building custom processes).
    pub fn noise_model(&self) -> NoiseModel {
        self.env.noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::Environment;

    fn bed() -> Testbed {
        Testbed::new(Environment::office(), 7)
    }

    #[test]
    fn fingerprint_shape() {
        let t = bed();
        let fp = t.fingerprint_matrix(0.0, 3);
        assert_eq!(fp.shape(), (8, 96));
        // RSS should be plausible dBm values.
        for &v in fp.iter() {
            assert!((-100.0..-20.0).contains(&v), "implausible RSS {v}");
        }
    }

    #[test]
    fn blocking_cells_have_lower_rss() {
        let t = bed();
        // Target on link 0's own row at cell 5 vs a far-away location on
        // link 7's row.
        let on_path = t.expected_rss(0, t.deployment().location_index(0, 5), 0.0);
        let far = t.expected_rss(0, t.deployment().location_index(7, 5), 0.0);
        assert!(
            far - on_path > 4.0,
            "blocked RSS {on_path} should be well below unblocked {far}"
        );
    }

    #[test]
    fn far_cells_match_empty_room() {
        let t = bed();
        // A target on link 7's row has no measurable effect on link 0.
        let with_target = t.expected_rss(0, t.deployment().location_index(7, 3), 0.0);
        let empty = t.expected_rss_empty(0, 0.0);
        // Multipath probe differs slightly; tolerance covers it.
        assert!(
            (with_target - empty).abs() < 2.0,
            "far target {with_target} vs empty {empty}"
        );
    }

    #[test]
    fn averaging_reduces_survey_noise() {
        let t = bed();
        let truth = t.expected_fingerprint_matrix(0.0);
        let err = |samples: usize, salt: u64| {
            let tb = Testbed::new(Environment::office(), 7 ^ salt);
            let fp = tb.fingerprint_matrix(0.0, samples);
            let truth2 = tb.expected_fingerprint_matrix(0.0);
            (&fp - &truth2).frobenius_norm() / (truth2.rows() * truth2.cols()) as f64
        };
        let _ = truth;
        let e1: f64 = (0..5).map(|s| err(1, s)).sum::<f64>() / 5.0;
        let e50: f64 = (0..5).map(|s| err(50, s)).sum::<f64>() / 5.0;
        assert!(
            e50 < e1 * 0.6,
            "50-sample survey ({e50}) should be much cleaner than 1-sample ({e1})"
        );
    }

    #[test]
    fn drift_shifts_fingerprints_over_time() {
        let t = bed();
        let day0 = t.expected_fingerprint_matrix(0.0);
        let day45 = t.expected_fingerprint_matrix(45.0);
        let mean_shift = (0..day0.rows())
            .map(|i| {
                (0..day0.cols())
                    .map(|j| (day45[(i, j)] - day0[(i, j)]).abs())
                    .sum::<f64>()
                    / day0.cols() as f64
            })
            .sum::<f64>()
            / day0.rows() as f64;
        assert!(
            mean_shift > 1.0,
            "45-day drift should be visible, got {mean_shift} dB"
        );
    }

    #[test]
    fn differences_more_stable_than_rss_over_time() {
        // The core Observation 2/3 check at the simulator level: the
        // *change over 45 days* of neighbouring-location differences is
        // much smaller than the change of raw RSS.
        let t = bed();
        let day0 = t.expected_fingerprint_matrix(0.0);
        let day45 = t.expected_fingerprint_matrix(45.0);
        let d = t.deployment();
        let mut raw_change = 0.0;
        let mut diff_change = 0.0;
        let mut count = 0;
        for i in 0..d.num_links() {
            for u in 0..d.locations_per_link() - 1 {
                let j1 = d.location_index(i, u);
                let j2 = d.location_index(i, u + 1);
                raw_change += (day45[(i, j1)] - day0[(i, j1)]).abs();
                let diff0 = day0[(i, j1)] - day0[(i, j2)];
                let diff45 = day45[(i, j1)] - day45[(i, j2)];
                diff_change += (diff45 - diff0).abs();
                count += 1;
            }
        }
        raw_change /= count as f64;
        diff_change /= count as f64;
        assert!(
            diff_change < raw_change * 0.5,
            "neighbour differences (Δ={diff_change}) must be stabler than raw RSS (Δ={raw_change})"
        );
    }

    #[test]
    fn online_measurement_length_and_determinism() {
        let t = bed();
        let y1 = t.online_measurement(10, 3.0, 77);
        let y2 = t.online_measurement(10, 3.0, 77);
        assert_eq!(y1.len(), 8);
        assert_eq!(y1, y2);
        let y3 = t.online_measurement(10, 3.0, 78);
        assert_ne!(y1, y3);
    }

    #[test]
    fn measure_columns_matches_fingerprint_scale() {
        let t = bed();
        let cols = t.measure_columns(&[0, 5, 90], 0.0, 5);
        assert_eq!(cols.shape(), (8, 3));
        let truth = t.expected_fingerprint_matrix(0.0);
        for (k, &j) in [0usize, 5, 90].iter().enumerate() {
            for i in 0..8 {
                assert!(
                    (cols[(i, k)] - truth[(i, j)]).abs() < 5.0,
                    "measured column deviates wildly from truth"
                );
            }
        }
    }

    #[test]
    fn trace_has_short_term_variation() {
        let t = bed();
        let trace = t.rss_trace(0, 5, 0.0, 200);
        let max = trace.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = trace.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            (2.0..10.0).contains(&(max - min)),
            "trace peak-to-peak {} outside Fig.1-like range",
            max - min
        );
    }

    #[test]
    fn obstruction_effect_blocked_on_own_row() {
        let t = bed();
        let d = t.deployment();
        assert_eq!(
            t.obstruction_effect(3, d.location_index(3, 6)),
            ObstructionEffect::LargeDecrease
        );
        assert_eq!(
            t.obstruction_effect(0, d.location_index(7, 6)),
            ObstructionEffect::NoDecrease
        );
    }
}
