//! The device-free target: a cylindrical absorber standing at a grid
//! location, and the RSS attenuation it causes on each link.

use crate::fresnel::{first_zone_radius, knife_edge_loss_db, knife_edge_v};
use crate::geometry::{Point, Segment};

/// A human-like target modelled as an absorbing cylinder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Target {
    /// Cylinder radius in metres (torso cross-section).
    pub radius: f64,
    /// Target height in metres.
    pub height: f64,
}

impl Target {
    /// The paper's experimental target: a 1.72 m person; we use a 0.26 m
    /// torso radius.
    pub fn person() -> Self {
        Target {
            radius: 0.26,
            height: 1.72,
        }
    }

    /// Attenuation in dB this target causes on `link` when standing at
    /// `pos`, for wavelength `lambda` (metres).
    ///
    /// The cylinder is reduced to a knife edge whose *effective clearance*
    /// is `radius - distance_to_LoS`: a target centred on the path
    /// protrudes by its full radius (positive `h`, deep shadow); a target
    /// whose body only grazes the first Fresnel zone yields a small
    /// negative `h` (small loss); a target outside the zone entirely
    /// produces 0 dB.
    ///
    /// The returned value is always `>= 0` (an attenuation).
    pub fn attenuation_db(&self, link: Segment, pos: Point, lambda: f64) -> f64 {
        let clearance = link.distance_to(pos);
        let (d1, d2) = link.split_distances(pos);
        let r1 = first_zone_radius(lambda, d1, d2);
        // Entirely outside the first Fresnel zone: negligible effect.
        if clearance - self.radius > r1 {
            return 0.0;
        }
        // Effective knife-edge protrusion past the LoS.
        let h_eff = self.radius - clearance;
        let v = knife_edge_v(h_eff, lambda, d1, d2);
        knife_edge_loss_db(v).max(0.0)
    }

    /// Classification helper mirroring the paper's Fig. 4 legend.
    pub fn effect(&self, link: Segment, pos: Point, lambda: f64) -> ObstructionEffect {
        let clearance = link.distance_to(pos);
        let (d1, d2) = link.split_distances(pos);
        let r1 = first_zone_radius(lambda, d1, d2);
        if clearance <= self.radius {
            ObstructionEffect::LargeDecrease
        } else if clearance - self.radius <= r1 {
            ObstructionEffect::SmallDecrease
        } else {
            ObstructionEffect::NoDecrease
        }
    }
}

impl Default for Target {
    fn default() -> Self {
        Target::person()
    }
}

/// How a target at some location affects a link's RSS (Fig. 4's legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObstructionEffect {
    /// The target blocks the direct path: large RSS decrease.
    LargeDecrease,
    /// The target is inside the first Fresnel zone but off the direct
    /// path: small RSS decrease.
    SmallDecrease,
    /// The target is outside the first Fresnel zone: no measurable
    /// decrease — these elements can be collected without the target
    /// being present.
    NoDecrease,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathloss::{wavelength, WIFI_24_GHZ};

    fn setup() -> (Segment, f64, Target) {
        (
            Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0)),
            wavelength(WIFI_24_GHZ),
            Target::person(),
        )
    }

    #[test]
    fn blocking_causes_large_loss() {
        let (link, lambda, t) = setup();
        let on_path = t.attenuation_db(link, Point::new(5.0, 0.0), lambda);
        assert!(on_path > 6.0, "on-path attenuation {on_path} dB too small");
    }

    #[test]
    fn ffz_grazing_causes_small_loss() {
        let (link, lambda, t) = setup();
        // r1 at midpoint ~0.557 m; stand 0.5 m off-path: body edge at
        // 0.24 m from the LoS, inside the zone but not blocking.
        let graze = t.attenuation_db(link, Point::new(5.0, 0.5), lambda);
        let block = t.attenuation_db(link, Point::new(5.0, 0.0), lambda);
        assert!(graze > 0.0, "grazing should attenuate a little");
        assert!(
            graze < block,
            "grazing {graze} must be below blocking {block}"
        );
    }

    #[test]
    fn outside_zone_no_loss() {
        let (link, lambda, t) = setup();
        assert_eq!(t.attenuation_db(link, Point::new(5.0, 2.0), lambda), 0.0);
        assert_eq!(t.attenuation_db(link, Point::new(5.0, -2.0), lambda), 0.0);
    }

    #[test]
    fn effect_classification() {
        let (link, lambda, t) = setup();
        assert_eq!(
            t.effect(link, Point::new(5.0, 0.1), lambda),
            ObstructionEffect::LargeDecrease
        );
        assert_eq!(
            t.effect(link, Point::new(5.0, 0.6), lambda),
            ObstructionEffect::SmallDecrease
        );
        assert_eq!(
            t.effect(link, Point::new(5.0, 3.0), lambda),
            ObstructionEffect::NoDecrease
        );
    }

    #[test]
    fn attenuation_larger_near_transceiver_than_midpoint() {
        // Matches the paper's Sec. IV-C1 observation used to build G.
        let (link, lambda, t) = setup();
        let near = t.attenuation_db(link, Point::new(1.2, 0.0), lambda);
        let mid = t.attenuation_db(link, Point::new(5.0, 0.0), lambda);
        assert!(near > mid, "near {near} vs mid {mid}");
    }

    #[test]
    fn attenuation_symmetric_about_midpoint() {
        let (link, lambda, t) = setup();
        let a = t.attenuation_db(link, Point::new(3.0, 0.0), lambda);
        let b = t.attenuation_db(link, Point::new(7.0, 0.0), lambda);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn attenuation_decreases_with_clearance() {
        let (link, lambda, t) = setup();
        let mut prev = f64::INFINITY;
        for k in 0..8 {
            let y = k as f64 * 0.15;
            let a = t.attenuation_db(link, Point::new(5.0, y), lambda);
            assert!(
                a <= prev + 1e-9,
                "attenuation should fall as target moves off-path"
            );
            prev = a;
        }
    }
}
