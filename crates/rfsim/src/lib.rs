//! RF testbed simulator substrate for the iUpdater reproduction.
//!
//! The original paper evaluates on a physical Wi-Fi testbed measured over
//! three months in three rooms. This crate is the synthetic stand-in: a
//! physics-based radio-signal-strength (RSS) simulator that produces
//! fingerprint matrices with the same structural properties the iUpdater
//! algorithm exploits:
//!
//! - **Fresnel-zone obstruction** ([`fresnel`], [`target`]): a target on
//!   a link's direct path causes a large RSS decrease, a target inside
//!   the first Fresnel zone (FFZ) a small decrease, and a target outside
//!   the FFZ essentially none (paper Fig. 3/4);
//! - **short-term variation** ([`noise`]): temporally correlated jitter
//!   plus interference bursts, ~5 dB peak-to-peak over 100 s (Fig. 1);
//! - **long-term drift** ([`drift`]): slow environment-level drift of a
//!   few dB over days to months (Fig. 2), mostly common-mode across a
//!   link — which is why RSS *differences* stay stable (Obs. 2/3);
//! - **multipath** ([`multipath`]): per-environment scatterer fields so
//!   the hall/office/library ordering of Fig. 19 emerges.
//!
//! The top-level entry point is [`Testbed`], which synthesises fingerprint
//! matrices at any day offset and online measurement vectors for
//! localization experiments.
//!
//! # Example
//!
//! ```
//! use iupdater_rfsim::{Environment, Testbed};
//!
//! let env = Environment::office();
//! let testbed = Testbed::new(env, 7);
//! let fp = testbed.fingerprint_matrix(0.0, 5);
//! assert_eq!(fp.rows(), testbed.deployment().num_links());
//! assert_eq!(fp.cols(), testbed.deployment().num_locations());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod deployment;
pub mod drift;
pub mod environment;
pub mod fresnel;
pub mod geometry;
pub mod labor;
pub mod multipath;
pub mod noise;
pub mod pathloss;
pub mod target;
pub mod trajectory;

pub use collector::Testbed;
pub use deployment::Deployment;
pub use environment::{Environment, EnvironmentKind};
pub use geometry::Point;
pub use target::Target;
