//! 2-D geometry primitives: points, segments, distances and projections.

/// A point (or vector) in the 2-D monitoring-area plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from metre coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Vector difference `self - other`.
    pub fn sub(&self, other: Point) -> Point {
        Point::new(self.x - other.x, self.y - other.y)
    }

    /// Dot product treating points as vectors.
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Euclidean norm treating the point as a vector.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }
}

/// A line segment between two points (a wireless link's direct path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point (the transmitter).
    pub a: Point,
    /// End point (the receiver).
    pub b: Point,
}

impl Segment {
    /// Creates a segment.
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length in metres.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Projects `p` onto the segment, returning the clamped parameter
    /// `t` in `[0, 1]` such that the closest point is `a + t (b - a)`.
    pub fn project(&self, p: Point) -> f64 {
        let d = self.b.sub(self.a);
        let len_sq = d.dot(d);
        if len_sq == 0.0 {
            return 0.0;
        }
        (p.sub(self.a).dot(d) / len_sq).clamp(0.0, 1.0)
    }

    /// The point on the segment at parameter `t` in `[0, 1]`.
    pub fn point_at(&self, t: f64) -> Point {
        Point::new(
            self.a.x + t * (self.b.x - self.a.x),
            self.a.y + t * (self.b.y - self.a.y),
        )
    }

    /// Shortest distance from `p` to the segment.
    pub fn distance_to(&self, p: Point) -> f64 {
        self.point_at(self.project(p)).distance(p)
    }

    /// Distances `(d1, d2)` from the closest point on the *infinite* line
    /// through the segment to the two endpoints, used by Fresnel-zone
    /// computations. The projection parameter is clamped to `[0, 1]` so
    /// `d1 + d2 == length()` always holds.
    pub fn split_distances(&self, p: Point) -> (f64, f64) {
        let t = self.project(p);
        let len = self.length();
        (t * len, (1.0 - t) * len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.norm(), 5.0);
    }

    #[test]
    fn segment_length_and_midpoint() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.length(), 10.0);
        let mid = s.point_at(0.5);
        assert_eq!(mid, Point::new(5.0, 0.0));
    }

    #[test]
    fn projection_on_segment() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.project(Point::new(3.0, 5.0)), 0.3);
        // Beyond the endpoints the parameter clamps.
        assert_eq!(s.project(Point::new(-5.0, 1.0)), 0.0);
        assert_eq!(s.project(Point::new(15.0, 1.0)), 1.0);
    }

    #[test]
    fn distance_to_segment() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.distance_to(Point::new(5.0, 2.0)), 2.0);
        assert_eq!(s.distance_to(Point::new(13.0, 4.0)), 5.0);
    }

    #[test]
    fn split_distances_sum_to_length() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(8.0, 6.0));
        let p = Point::new(4.0, 3.0);
        let (d1, d2) = s.split_distances(p);
        assert!((d1 + d2 - s.length()).abs() < 1e-12);
        assert!((d1 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment() {
        let s = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.project(Point::new(5.0, 5.0)), 0.0);
        assert!((s.distance_to(Point::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }
}
