//! Target trajectory simulation: a walking target producing a sequence
//! of online measurements, the input for device-free *tracking* (the
//! application domain of the paper's RASS comparison system).

use iupdater_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::collector::Testbed;
use crate::deployment::Deployment;

/// A walking trajectory expressed as a sequence of grid cells (one per
/// measurement epoch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trajectory {
    cells: Vec<usize>,
}

impl Trajectory {
    /// Wraps an explicit cell sequence.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty.
    pub fn from_cells(cells: Vec<usize>) -> Self {
        assert!(!cells.is_empty(), "trajectory needs at least one cell");
        Trajectory { cells }
    }

    /// A random walk over the grid: at each step the target stays or
    /// moves to a 4-neighbour cell (up/down along links or sideways to
    /// the adjacent link's same relative cell), never leaving the grid.
    pub fn random_walk(deployment: &Deployment, start: usize, steps: usize, seed: u64) -> Self {
        assert!(
            start < deployment.num_locations(),
            "start cell out of range"
        );
        let per = deployment.locations_per_link();
        let m = deployment.num_links();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cells = Vec::with_capacity(steps + 1);
        let mut cur = start;
        cells.push(cur);
        for _ in 0..steps {
            let link = cur / per;
            let cell = cur % per;
            let mut options = vec![cur];
            if cell > 0 {
                options.push(cur - 1);
            }
            if cell + 1 < per {
                options.push(cur + 1);
            }
            if link > 0 {
                options.push(cur - per);
            }
            if link + 1 < m {
                options.push(cur + per);
            }
            cur = options[rng.gen_range(0..options.len())];
            cells.push(cur);
        }
        Trajectory { cells }
    }

    /// The visited cells.
    pub fn cells(&self) -> &[usize] {
        &self.cells
    }

    /// Number of epochs.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always `false` (construction requires a non-empty sequence).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Generates the per-epoch online measurement vectors on a testbed
    /// at day offset `day`, one epoch per row (`epochs x M`).
    pub fn measurements(&self, testbed: &Testbed, day: f64, salt: u64) -> Matrix {
        let m = testbed.deployment().num_links();
        let mut out = Matrix::zeros(self.cells.len(), m);
        for (k, &j) in self.cells.iter().enumerate() {
            let y = testbed.online_measurement(j, day, salt.wrapping_add(k as u64 * 131));
            out.set_row(k, &y);
        }
        out
    }

    /// Total path length in metres.
    pub fn path_length_m(&self, deployment: &Deployment) -> f64 {
        self.cells
            .windows(2)
            .map(|w| deployment.distance_between(w[0], w[1]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::Environment;

    fn deployment() -> Deployment {
        Deployment::new(&Environment::office())
    }

    #[test]
    fn random_walk_stays_on_grid_and_moves_one_cell() {
        let d = deployment();
        let t = Trajectory::random_walk(&d, 40, 200, 7);
        assert_eq!(t.len(), 201);
        for w in t.cells().windows(2) {
            assert!(w[0] < d.num_locations());
            let dist = d.distance_between(w[0], w[1]);
            assert!(
                dist < 1.6,
                "steps must be to neighbouring cells, got {dist} m"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = deployment();
        assert_eq!(
            Trajectory::random_walk(&d, 0, 50, 3),
            Trajectory::random_walk(&d, 0, 50, 3)
        );
        assert_ne!(
            Trajectory::random_walk(&d, 0, 50, 3),
            Trajectory::random_walk(&d, 0, 50, 4)
        );
    }

    #[test]
    fn measurements_shape() {
        let env = Environment::office();
        let t = Testbed::new(env, 5);
        let traj = Trajectory::from_cells(vec![1, 2, 3]);
        let ms = traj.measurements(&t, 0.0, 9);
        assert_eq!(ms.shape(), (3, 8));
    }

    #[test]
    fn path_length_accumulates() {
        let d = deployment();
        let traj = Trajectory::from_cells(vec![0, 1, 2]);
        let expected = 2.0 * d.grid_step();
        assert!((traj.path_length_m(&d) - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_trajectory_rejected() {
        let _ = Trajectory::from_cells(vec![]);
    }
}
