//! Static multipath field: a per-environment set of scatterers that
//! shapes the RSS two ways.
//!
//! 1. **Ambient field** ([`MultipathField::ambient_db`]): each scatterer
//!    adds a link-dependent perturbation to the empty-room RSS, with a
//!    slow temporal component (furniture shifts, doors, humidity on
//!    reflectors).
//! 2. **Target coupling** ([`MultipathField::target_db`]): a person
//!    standing at a grid location perturbs the reflection paths of every
//!    scatterer near them, leaving a *multi-link, position-dependent
//!    signature* of a dB or two. This is what makes real RSS
//!    fingerprints unique per location (and is why fingerprinting works
//!    at all): the direct-path obstruction alone is symmetric along a
//!    link and single-link, but the multipath signature breaks both
//!    degeneracies.
//!
//! Scatterer density and strength differ per environment, producing the
//! hall < office < library error ordering of the paper's Fig. 19.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::geometry::{Point, Segment};
use crate::noise::gaussian;

/// Multipath field parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultipathModel {
    /// Number of scatterers in the field.
    pub num_scatterers: usize,
    /// RMS amplitude (dB) of a single scatterer's ambient contribution.
    pub amp_db: f64,
    /// Spatial decay length (metres) of a scatterer's influence on a
    /// link.
    pub link_decay_m: f64,
    /// Gain of the target-coupling term relative to the ambient
    /// amplitude.
    pub target_gain: f64,
    /// Spatial decay length (metres) of the target-scatterer coupling.
    pub target_decay_m: f64,
    /// Spatial ripple frequency (rad/m) of the target signature — how
    /// fast the signature changes as the target moves.
    pub ripple_rad_per_m: f64,
    /// Fraction of each scatterer's contribution that drifts over time.
    pub temporal_fraction: f64,
    /// Time scale (days) of the temporal component.
    pub temporal_period_days: f64,
}

impl MultipathModel {
    /// Low-multipath (empty hall) preset.
    pub fn low() -> Self {
        MultipathModel {
            num_scatterers: 8,
            amp_db: 0.7,
            link_decay_m: 3.2,
            target_gain: 2.6,
            target_decay_m: 3.2,
            ripple_rad_per_m: 2.0,
            temporal_fraction: 0.15,
            temporal_period_days: 37.0,
        }
    }

    /// Medium-multipath (office with desks and cubicles) preset.
    pub fn medium() -> Self {
        MultipathModel {
            num_scatterers: 18,
            amp_db: 1.1,
            link_decay_m: 3.0,
            target_gain: 2.8,
            target_decay_m: 3.4,
            ripple_rad_per_m: 2.0,
            temporal_fraction: 0.25,
            temporal_period_days: 29.0,
        }
    }

    /// High-multipath (library with metal shelves) preset.
    pub fn high() -> Self {
        MultipathModel {
            num_scatterers: 34,
            amp_db: 1.7,
            link_decay_m: 2.8,
            target_gain: 3.0,
            target_decay_m: 3.6,
            ripple_rad_per_m: 3.0,
            temporal_fraction: 0.32,
            temporal_period_days: 23.0,
        }
    }
}

#[derive(Debug, Clone)]
struct Scatterer {
    pos: Point,
    amp_db: f64,
    phase: f64,
    target_phase: f64,
}

/// A realised multipath field over a `width x height` area.
#[derive(Debug, Clone)]
pub struct MultipathField {
    model: MultipathModel,
    scatterers: Vec<Scatterer>,
    /// Phase of the environment-wide temporal modulation. Temperature
    /// and humidity drive all reflectors together, so the temporal
    /// factor is shared by the whole field — which is why adjacent-link
    /// differences stay stable over months (Obs. 3).
    temporal_phase: f64,
}

impl MultipathField {
    /// Generates a field for the given area dimensions (metres).
    pub fn generate(model: MultipathModel, width: f64, height: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let scatterers = (0..model.num_scatterers)
            .map(|_| Scatterer {
                pos: Point::new(rng.gen::<f64>() * width, rng.gen::<f64>() * height),
                amp_db: gaussian(&mut rng) * model.amp_db,
                phase: rng.gen::<f64>() * 2.0 * std::f64::consts::PI,
                target_phase: rng.gen::<f64>() * 2.0 * std::f64::consts::PI,
            })
            .collect();
        let temporal_phase = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
        MultipathField {
            model,
            scatterers,
            temporal_phase,
        }
    }

    /// Ambient (empty-room) multipath perturbation (dB) for a link at
    /// day offset `day`.
    pub fn ambient_db(&self, link: Segment, day: f64) -> f64 {
        let m = &self.model;
        let mut total = 0.0;
        for s in &self.scatterers {
            let d_link = link.distance_to(s.pos);
            let weight = (-d_link / m.link_decay_m).exp();
            if weight < 1e-6 {
                continue;
            }
            let spatial = (s.phase + 3.1 * d_link).sin();
            let temporal = (self.temporal_phase
                + 2.0 * std::f64::consts::PI * day / m.temporal_period_days)
                .sin();
            let mix =
                (1.0 - m.temporal_fraction) * spatial + m.temporal_fraction * spatial * temporal;
            total += s.amp_db * weight * mix;
        }
        total
    }

    /// Additional perturbation (dB) a target standing at `target`
    /// imposes on `link` through the scatterer field at `day`. Stable
    /// over time except for the temporal fraction; rapidly varying in
    /// the target position (the fingerprint signature).
    pub fn target_db(&self, link: Segment, target: Point, day: f64) -> f64 {
        let m = &self.model;
        let mut total = 0.0;
        for s in &self.scatterers {
            let d_link = link.distance_to(s.pos);
            let d_target = s.pos.distance(target);
            let weight = (-d_link / m.link_decay_m).exp() * (-d_target / m.target_decay_m).exp();
            if weight < 1e-6 {
                continue;
            }
            let signature = (s.target_phase + m.ripple_rad_per_m * d_target).sin();
            let temporal = (self.temporal_phase
                + 2.0 * std::f64::consts::PI * day / m.temporal_period_days)
                .sin();
            let mix = (1.0 - m.temporal_fraction) * signature
                + m.temporal_fraction * signature * temporal;
            total += s.amp_db * m.target_gain * weight * mix;
        }
        total
    }

    /// Total perturbation with a target present: ambient + coupling.
    pub fn with_target_db(&self, link: Segment, target: Point, day: f64) -> f64 {
        self.ambient_db(link, day) + self.target_db(link, target, day)
    }

    /// The model parameters.
    pub fn model(&self) -> &MultipathModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Segment {
        Segment::new(Point::new(0.0, 3.0), Point::new(10.0, 3.0))
    }

    fn far_link() -> Segment {
        Segment::new(Point::new(0.0, 9.0), Point::new(10.0, 9.0))
    }

    #[test]
    fn richer_environments_perturb_more() {
        let probe = Point::new(5.0, 3.0);
        let rms = |model: MultipathModel| {
            let mut acc = 0.0;
            let trials = 60;
            for seed in 0..trials {
                let f = MultipathField::generate(model, 10.0, 12.0, seed);
                let v = f.with_target_db(link(), probe, 0.0);
                acc += v * v;
            }
            (acc / trials as f64).sqrt()
        };
        let low = rms(MultipathModel::low());
        let med = rms(MultipathModel::medium());
        let high = rms(MultipathModel::high());
        assert!(low < med && med < high, "low {low}, med {med}, high {high}");
    }

    #[test]
    fn target_signature_is_multi_link() {
        // A target near one link must still leave a visible signature on
        // a distant link — the property that makes columns unique.
        let f = MultipathField::generate(MultipathModel::medium(), 10.0, 12.0, 3);
        let probe = Point::new(5.0, 3.0);
        let sig_far = f.target_db(far_link(), probe, 0.0);
        assert!(
            sig_far.abs() > 1e-4,
            "target signature should reach distant links, got {sig_far}"
        );
    }

    #[test]
    fn signature_discriminates_mirror_positions() {
        // Positions mirrored about the link midpoint have identical
        // direct-path obstruction; the multipath signature must differ.
        let mut distinct = 0;
        let trials = 40;
        for seed in 0..trials {
            let f = MultipathField::generate(MultipathModel::medium(), 10.0, 12.0, seed);
            let a: f64 = (0..4)
                .map(|k| {
                    let l = Segment::new(
                        Point::new(0.0, 1.5 * k as f64),
                        Point::new(10.0, 1.5 * k as f64),
                    );
                    (f.target_db(l, Point::new(2.0, 3.0), 0.0)
                        - f.target_db(l, Point::new(8.0, 3.0), 0.0))
                    .abs()
                })
                .sum();
            if a > 0.8 {
                distinct += 1;
            }
        }
        assert!(
            distinct > trials * 3 / 4,
            "mirror positions distinguished in only {distinct}/{trials} fields"
        );
    }

    #[test]
    fn signature_varies_between_neighboring_cells() {
        let f = MultipathField::generate(MultipathModel::medium(), 10.0, 12.0, 5);
        let a = f.target_db(link(), Point::new(4.25, 3.0), 0.0);
        let b = f.target_db(link(), Point::new(5.0, 3.0), 0.0);
        assert!((a - b).abs() > 1e-3, "neighbouring cells should differ");
    }

    #[test]
    fn ambient_varies_slowly_with_time() {
        let f = MultipathField::generate(MultipathModel::medium(), 10.0, 12.0, 4);
        let day0 = f.ambient_db(link(), 0.0);
        let hour_later = f.ambient_db(link(), 1.0 / 24.0);
        assert!(
            (day0 - hour_later).abs() < 0.2,
            "hours-scale change too fast"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = MultipathField::generate(MultipathModel::medium(), 10.0, 12.0, 9);
        let b = MultipathField::generate(MultipathModel::medium(), 10.0, 12.0, 9);
        let p = Point::new(4.0, 2.0);
        assert_eq!(
            a.with_target_db(link(), p, 3.0),
            b.with_target_db(link(), p, 3.0)
        );
    }

    #[test]
    fn bounded_magnitude() {
        let f = MultipathField::generate(MultipathModel::high(), 10.0, 12.0, 11);
        for i in 0..50 {
            let p = Point::new(i as f64 * 0.2, (i % 12) as f64);
            let v = f.with_target_db(link(), p, i as f64);
            assert!(v.abs() < 15.0, "implausible multipath magnitude {v}");
        }
    }
}
