//! Short-term RSS variation: temporally correlated jitter, interference
//! bursts and receiver quantisation (paper Fig. 1: ~5 dB over 100 s).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Short-term noise process parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Stationary standard deviation of the AR(1) jitter, in dB.
    pub sigma: f64,
    /// AR(1) coefficient per sample (temporal correlation).
    pub ar_coeff: f64,
    /// Probability of an interference burst per sample.
    pub burst_prob: f64,
    /// Maximum burst magnitude in dB (bursts are uniform in
    /// `[-max, -0.5]`, interference lowers RSS).
    pub burst_max_db: f64,
    /// RSS quantisation step in dB (COTS NICs report 0.5 or 1 dB steps);
    /// 0 disables quantisation.
    pub quantize_db: f64,
}

impl Default for NoiseModel {
    /// Calibrated to the paper's Fig. 1: ~5 dB peak-to-peak per 100 s at
    /// 0.5 s sampling.
    fn default() -> Self {
        NoiseModel {
            sigma: 0.9,
            ar_coeff: 0.85,
            burst_prob: 0.03,
            burst_max_db: 3.0,
            quantize_db: 0.5,
        }
    }
}

/// A stateful sampler for the short-term noise process.
#[derive(Debug, Clone)]
pub struct NoiseProcess {
    model: NoiseModel,
    state: f64,
    rng: StdRng,
}

impl NoiseProcess {
    /// Creates a process with the given model and RNG seed.
    pub fn new(model: NoiseModel, seed: u64) -> Self {
        NoiseProcess {
            model,
            state: 0.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next noise sample in dB (to be *added* to the clean RSS).
    pub fn next_sample(&mut self) -> f64 {
        let m = &self.model;
        // AR(1) with stationary variance sigma^2.
        let innovation_sigma = m.sigma * (1.0 - m.ar_coeff * m.ar_coeff).sqrt();
        let gauss = gaussian(&mut self.rng) * innovation_sigma;
        self.state = m.ar_coeff * self.state + gauss;
        let mut value = self.state;
        if m.burst_prob > 0.0 && self.rng.gen::<f64>() < m.burst_prob {
            value -= 0.5 + self.rng.gen::<f64>() * (m.burst_max_db - 0.5).max(0.0);
        }
        value
    }

    /// Draws a trace of `n` samples.
    pub fn trace(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_sample()).collect()
    }

    /// Quantises an RSS reading according to the model's step.
    pub fn quantize(&self, rss: f64) -> f64 {
        quantize(rss, self.model.quantize_db)
    }

    /// The underlying model.
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }
}

/// Quantises `rss` to the nearest multiple of `step` (no-op for step 0).
pub fn quantize(rss: f64, step: f64) -> f64 {
    if step <= 0.0 {
        rss
    } else {
        (rss / step).round() * step
    }
}

/// Standard normal sample via Box-Muller (avoids external distributions).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_peak_to_peak_close_to_paper() {
        // Fig. 1: ~5 dB variation over 200 samples (100 s at 0.5 s).
        let mut p = NoiseProcess::new(NoiseModel::default(), 42);
        let trace = p.trace(200);
        let max = trace.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = trace.iter().cloned().fold(f64::INFINITY, f64::min);
        let pp = max - min;
        assert!(
            (3.0..9.0).contains(&pp),
            "peak-to-peak {pp} dB out of range"
        );
    }

    #[test]
    fn noise_is_roughly_zero_mean() {
        let mut p = NoiseProcess::new(
            NoiseModel {
                burst_prob: 0.0,
                ..NoiseModel::default()
            },
            7,
        );
        let trace = p.trace(20_000);
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn stationary_sigma_matches_model() {
        let model = NoiseModel {
            burst_prob: 0.0,
            ..NoiseModel::default()
        };
        let mut p = NoiseProcess::new(model, 11);
        let trace = p.trace(50_000);
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        let var = trace.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / trace.len() as f64;
        assert!(
            (var.sqrt() - model.sigma).abs() < 0.1,
            "sigma {} ",
            var.sqrt()
        );
    }

    #[test]
    fn temporal_correlation_present() {
        let model = NoiseModel {
            burst_prob: 0.0,
            ..NoiseModel::default()
        };
        let mut p = NoiseProcess::new(model, 13);
        let trace = p.trace(50_000);
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        let var: f64 = trace.iter().map(|x| (x - mean).powi(2)).sum();
        let cov: f64 = trace
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        let rho = cov / var;
        assert!((rho - model.ar_coeff).abs() < 0.05, "rho {rho}");
    }

    #[test]
    fn bursts_skew_negative() {
        let model = NoiseModel {
            burst_prob: 0.5,
            burst_max_db: 3.0,
            ..NoiseModel::default()
        };
        let mut p = NoiseProcess::new(model, 5);
        let trace = p.trace(10_000);
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        assert!(mean < -0.3, "bursts should pull the mean down, mean {mean}");
    }

    #[test]
    fn quantize_steps() {
        assert_eq!(quantize(-71.26, 0.5), -71.5);
        assert_eq!(quantize(-71.24, 0.5), -71.0);
        assert_eq!(quantize(-71.26, 0.0), -71.26);
        assert_eq!(quantize(-71.4, 1.0), -71.0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = NoiseProcess::new(NoiseModel::default(), 99).trace(50);
        let b = NoiseProcess::new(NoiseModel::default(), 99).trace(50);
        assert_eq!(a, b);
        let c = NoiseProcess::new(NoiseModel::default(), 100).trace(50);
        assert_ne!(a, c);
    }
}
