//! Deployment environments: the paper's office, library and hall presets
//! (Sec. VI-A, Figs. 11-13) plus a fully custom constructor.

use crate::drift::DriftModel;
use crate::multipath::MultipathModel;
use crate::noise::NoiseModel;
use crate::pathloss::LogDistanceModel;
use crate::target::Target;

/// Which of the paper's three experimental environments a preset mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvironmentKind {
    /// 9 m x 12 m office: desks and cubicles, medium multipath, 8 links,
    /// 96 grid locations (the paper used 94 = 96 minus 2 furniture cells).
    Office,
    /// 8 m x 11 m library: metal shelves, high multipath, 6 links, 72
    /// grid locations.
    Library,
    /// 10 m x 10 m empty hall: low multipath, 8 links, 120 grid
    /// locations.
    Hall,
    /// A custom environment.
    Custom,
}

impl std::fmt::Display for EnvironmentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            EnvironmentKind::Office => "office",
            EnvironmentKind::Library => "library",
            EnvironmentKind::Hall => "hall",
            EnvironmentKind::Custom => "custom",
        };
        f.write_str(name)
    }
}

/// A complete description of a deployment environment: geometry, link
/// count, grid resolution and all physical model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Environment {
    /// Which preset (or Custom).
    pub kind: EnvironmentKind,
    /// Area width in metres (the direction links run along).
    pub width_m: f64,
    /// Area height in metres (the direction links are stacked in).
    pub height_m: f64,
    /// Number of parallel links `M`.
    pub num_links: usize,
    /// Number of grid locations per link `N/M`.
    pub locations_per_link: usize,
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Maximum per-link static clutter loss in dB: each link draws a
    /// uniform extra attenuation in `[0, link_clutter_db]` (furniture,
    /// shelving, NLoS obstructions differ per link — this is what makes
    /// real fingerprint rows span tens of dB).
    pub link_clutter_db: f64,
    /// Path-loss model.
    pub pathloss: LogDistanceModel,
    /// Short-term noise model.
    pub noise: NoiseModel,
    /// Long-term drift model.
    pub drift: DriftModel,
    /// Multipath field model.
    pub multipath: MultipathModel,
    /// The target.
    pub target: Target,
}

impl Environment {
    /// The paper's office: 9 m x 12 m, 8 links, 12 locations per link
    /// (96 grids; paper reports 94 after furniture masking), medium
    /// multipath (LoS + NLoS mix).
    pub fn office() -> Self {
        Environment {
            kind: EnvironmentKind::Office,
            width_m: 9.0,
            height_m: 12.0,
            num_links: 8,
            locations_per_link: 12,
            tx_power_dbm: 16.0,
            link_clutter_db: 10.0,
            pathloss: LogDistanceModel::indoor(3.0),
            noise: NoiseModel::default(),
            drift: DriftModel::default(),
            multipath: MultipathModel::medium(),
            target: Target::person(),
        }
    }

    /// The paper's library: 8 m x 11 m, 6 links, 12 locations per link
    /// (72 grids), high multipath from metal shelving.
    pub fn library() -> Self {
        Environment {
            kind: EnvironmentKind::Library,
            width_m: 8.0,
            height_m: 11.0,
            num_links: 6,
            locations_per_link: 12,
            tx_power_dbm: 16.0,
            link_clutter_db: 12.0,
            pathloss: LogDistanceModel::indoor(3.4),
            noise: NoiseModel {
                sigma: 1.05,
                ..NoiseModel::default()
            },
            drift: DriftModel::default(),
            multipath: MultipathModel::high(),
            target: Target::person(),
        }
    }

    /// The paper's hall: 10 m x 10 m, 8 links, 15 locations per link
    /// (120 grids), low multipath (mostly LoS).
    pub fn hall() -> Self {
        Environment {
            kind: EnvironmentKind::Hall,
            width_m: 10.0,
            height_m: 10.0,
            num_links: 8,
            locations_per_link: 15,
            tx_power_dbm: 16.0,
            link_clutter_db: 3.0,
            pathloss: LogDistanceModel::indoor(2.4),
            noise: NoiseModel {
                sigma: 0.8,
                ..NoiseModel::default()
            },
            drift: DriftModel::default(),
            multipath: MultipathModel::low(),
            target: Target::person(),
        }
    }

    /// All three paper presets, in low-to-high multipath order.
    pub fn all_presets() -> Vec<Environment> {
        vec![
            Environment::hall(),
            Environment::office(),
            Environment::library(),
        ]
    }

    /// Total number of grid locations `N`.
    pub fn num_locations(&self) -> usize {
        self.num_links * self.locations_per_link
    }

    /// Grid edge length in metres along the link direction.
    pub fn grid_step_m(&self) -> f64 {
        self.width_m / self.locations_per_link as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn office_matches_paper_dimensions() {
        let e = Environment::office();
        assert_eq!(e.width_m, 9.0);
        assert_eq!(e.height_m, 12.0);
        assert_eq!(e.num_links, 8);
        assert_eq!(e.num_locations(), 96); // paper: 94 after furniture
    }

    #[test]
    fn library_matches_paper_dimensions() {
        let e = Environment::library();
        assert_eq!(e.num_links, 6);
        assert_eq!(e.num_locations(), 72); // exactly the paper's count
    }

    #[test]
    fn hall_matches_paper_dimensions() {
        let e = Environment::hall();
        assert_eq!(e.num_links, 8);
        assert_eq!(e.num_locations(), 120); // exactly the paper's count
    }

    #[test]
    fn grid_step_close_to_paper() {
        // Paper: 0.6 m between adjacent locations.
        for e in Environment::all_presets() {
            let step = e.grid_step_m();
            assert!((0.55..0.8).contains(&step), "{}: step {step}", e.kind);
        }
    }

    #[test]
    fn multipath_ordering() {
        let hall = Environment::hall();
        let office = Environment::office();
        let library = Environment::library();
        assert!(hall.multipath.amp_db < office.multipath.amp_db);
        assert!(office.multipath.amp_db < library.multipath.amp_db);
    }

    #[test]
    fn kind_display() {
        assert_eq!(Environment::office().kind.to_string(), "office");
        assert_eq!(Environment::library().kind.to_string(), "library");
        assert_eq!(Environment::hall().kind.to_string(), "hall");
    }
}
