//! First-Fresnel-zone geometry and knife-edge diffraction loss.
//!
//! The paper's fingerprint structure (Fig. 3/4) is entirely a Fresnel-zone
//! story: a target blocking the direct path causes a large RSS decrease,
//! a target inside the first Fresnel zone (FFZ) but off the path a small
//! decrease, and a target outside the FFZ essentially none. We model the
//! target as a knife-edge obstruction and use the standard approximation
//! of the diffraction integral for the loss.

use crate::geometry::{Point, Segment};

/// Radius of the first Fresnel zone at a point splitting the link into
/// distances `d1`, `d2` (metres), for wavelength `lambda` (metres):
/// `r1 = sqrt(lambda d1 d2 / (d1 + d2))`.
///
/// Returns 0.0 when either distance is non-positive (at the endpoints the
/// zone closes).
pub fn first_zone_radius(lambda: f64, d1: f64, d2: f64) -> f64 {
    if d1 <= 0.0 || d2 <= 0.0 {
        return 0.0;
    }
    (lambda * d1 * d2 / (d1 + d2)).sqrt()
}

/// Whether a point `p` lies within the first Fresnel zone of `link`
/// (projected onto the 2-D plane).
pub fn in_first_zone(link: Segment, p: Point, lambda: f64) -> bool {
    let (d1, d2) = link.split_distances(p);
    let clearance = link.distance_to(p);
    clearance <= first_zone_radius(lambda, d1, d2)
}

/// Fresnel-Kirchhoff diffraction parameter
/// `v = h sqrt(2 (d1 + d2) / (lambda d1 d2))`, where `h` is the
/// *clearance* of the obstruction edge relative to the line of sight
/// (negative `h` = the edge is below the LoS = partial clearance;
/// positive `h` = the edge protrudes above the LoS = obstruction).
///
/// Returns `-inf`-safe 0.0-clearance behaviour: when either distance is
/// non-positive, returns a very large negative value (no obstruction
/// possible at the endpoints).
pub fn knife_edge_v(h: f64, lambda: f64, d1: f64, d2: f64) -> f64 {
    if d1 <= 0.0 || d2 <= 0.0 {
        return -20.0;
    }
    h * (2.0 * (d1 + d2) / (lambda * d1 * d2)).sqrt()
}

/// Knife-edge diffraction loss in dB for parameter `v`, using the
/// standard piecewise approximation of the Fresnel integral
/// (ITU-R P.526 / Lee). Loss is 0 dB for `v <= -1` (full clearance) and
/// grows with `v`; in the partial-clearance band `-1 < v < -0.8` the
/// approximation can return slightly *negative* values (up to ~-1 dB),
/// reflecting the real Fresnel oscillation gain.
pub fn knife_edge_loss_db(v: f64) -> f64 {
    if v <= -1.0 {
        0.0
    } else if v <= 0.0 {
        -20.0 * (0.5 - 0.62 * v).log10()
    } else if v <= 1.0 {
        -20.0 * (0.5 * (-0.95 * v).exp()).log10()
    } else if v <= 2.4 {
        -20.0 * (0.4 - (0.1184 - (0.38 - 0.1 * v).powi(2)).sqrt()).log10()
    } else {
        -20.0 * (0.225 / v).log10()
    }
}

/// Combined helper: diffraction loss in dB caused by an obstruction whose
/// edge has perpendicular clearance `h_eff` from the LoS of `link` at the
/// plane of point `p` (2-D projection). `h_eff` follows the knife-edge
/// sign convention (positive = protrudes past the LoS).
pub fn obstruction_loss_db(link: Segment, p: Point, h_eff: f64, lambda: f64) -> f64 {
    let (d1, d2) = link.split_distances(p);
    let v = knife_edge_v(h_eff, lambda, d1, d2);
    knife_edge_loss_db(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathloss::{wavelength, WIFI_24_GHZ};

    fn lambda() -> f64 {
        wavelength(WIFI_24_GHZ)
    }

    #[test]
    fn zone_radius_maximal_at_midpoint() {
        let l = lambda();
        let mid = first_zone_radius(l, 5.0, 5.0);
        let quarter = first_zone_radius(l, 2.5, 7.5);
        let near_end = first_zone_radius(l, 0.5, 9.5);
        assert!(mid > quarter && quarter > near_end);
    }

    #[test]
    fn zone_radius_known_value() {
        // r1 = sqrt(lambda * d1 d2 / d) with lambda ~ 0.1243, d1=d2=5:
        // sqrt(0.1243 * 25 / 10) = sqrt(0.3108) ~ 0.557 m.
        let r = first_zone_radius(lambda(), 5.0, 5.0);
        assert!((r - 0.557).abs() < 5e-3, "r = {r}");
    }

    #[test]
    fn zone_radius_zero_at_endpoints() {
        assert_eq!(first_zone_radius(lambda(), 0.0, 10.0), 0.0);
        assert_eq!(first_zone_radius(lambda(), 10.0, 0.0), 0.0);
    }

    #[test]
    fn in_first_zone_classification() {
        let link = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let l = lambda();
        // On the path: inside.
        assert!(in_first_zone(link, Point::new(5.0, 0.0), l));
        // 0.3 m off-path at midpoint: inside (r1 ~ 0.557 m).
        assert!(in_first_zone(link, Point::new(5.0, 0.3), l));
        // 1 m off-path: outside.
        assert!(!in_first_zone(link, Point::new(5.0, 1.0), l));
        // 0.3 m off-path but very close to the TX: outside (zone narrows).
        assert!(!in_first_zone(link, Point::new(0.2, 0.3), l));
    }

    #[test]
    fn knife_edge_loss_monotone_in_v() {
        let mut prev = knife_edge_loss_db(-1.5);
        for i in 0..100 {
            let v = -1.5 + i as f64 * 0.05;
            let loss = knife_edge_loss_db(v);
            // Allow the ~1 dB Fresnel-oscillation dip near v = -1.
            assert!(
                loss >= prev - 1.0,
                "loss should be (approximately) monotone: v={v}, {loss} < {prev}"
            );
            prev = loss;
        }
    }

    #[test]
    fn knife_edge_loss_reference_points() {
        // v = 0 (grazing): 6 dB.
        assert!((knife_edge_loss_db(0.0) - 6.0).abs() < 0.1);
        // Full clearance: 0 dB.
        assert_eq!(knife_edge_loss_db(-2.0), 0.0);
        // Deep shadow v = 2.4: ~21 dB.
        let deep = knife_edge_loss_db(2.4);
        assert!(deep > 18.0 && deep < 22.0, "deep = {deep}");
    }

    #[test]
    fn loss_larger_near_transceivers_for_fixed_clearance() {
        // The paper (Sec. IV-C1) notes the RSS decrease is larger near the
        // transceivers and smaller at the link midpoint. For a fixed
        // physical protrusion h, v grows as d1*d2 shrinks, so the
        // knife-edge model reproduces exactly this.
        let link = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let l = lambda();
        let h = 0.25;
        let near_tx = obstruction_loss_db(link, Point::new(1.0, 0.0), h, l);
        let mid = obstruction_loss_db(link, Point::new(5.0, 0.0), h, l);
        assert!(
            near_tx > mid,
            "near-transceiver loss {near_tx} should exceed midpoint loss {mid}"
        );
    }

    #[test]
    fn v_sign_convention() {
        let l = lambda();
        assert!(knife_edge_v(0.5, l, 5.0, 5.0) > 0.0);
        assert!(knife_edge_v(-0.5, l, 5.0, 5.0) < 0.0);
        // Endpoint guard.
        assert_eq!(knife_edge_v(0.5, l, 0.0, 5.0), -20.0);
    }
}
