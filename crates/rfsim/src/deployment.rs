//! Link/grid deployment geometry (the paper's Fig. 3): `M` parallel
//! links spanning the monitoring area, each with `N/M` grid locations
//! laid out along it. Grid `j` (0-based here) belongs to link
//! `j / (N/M)` and is the `j mod (N/M)`-th cell along that link.

use crate::environment::Environment;
use crate::geometry::{Point, Segment};

/// The physical layout of links and grid locations for an environment.
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    links: Vec<Segment>,
    grid_centers: Vec<Point>,
    num_links: usize,
    locations_per_link: usize,
    grid_step: f64,
}

impl Deployment {
    /// Builds the deployment for an environment: links run horizontally
    /// (along `width_m`) at evenly spaced heights, and each link's grid
    /// cells are centred on the link line.
    ///
    /// # Panics
    ///
    /// Panics if the environment has zero links or zero locations.
    pub fn new(env: &Environment) -> Self {
        assert!(env.num_links > 0, "need at least one link");
        assert!(
            env.locations_per_link > 0,
            "need at least one location per link"
        );
        let m = env.num_links;
        let per = env.locations_per_link;
        let step = env.width_m / per as f64;
        // Links evenly spaced in y, inset by half a row spacing.
        let row_spacing = env.height_m / m as f64;
        let links: Vec<Segment> = (0..m)
            .map(|i| {
                let y = row_spacing * (i as f64 + 0.5);
                Segment::new(Point::new(0.0, y), Point::new(env.width_m, y))
            })
            .collect();
        // Grid centres along each link.
        let mut grid_centers = Vec::with_capacity(m * per);
        for link in &links {
            for u in 0..per {
                let x = step * (u as f64 + 0.5);
                grid_centers.push(Point::new(x, link.a.y));
            }
        }
        Deployment {
            links,
            grid_centers,
            num_links: m,
            locations_per_link: per,
            grid_step: step,
        }
    }

    /// Number of links `M`.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Number of grid locations per link `N/M`.
    pub fn locations_per_link(&self) -> usize {
        self.locations_per_link
    }

    /// Total number of grid locations `N`.
    pub fn num_locations(&self) -> usize {
        self.grid_centers.len()
    }

    /// Grid step (metres) along the link direction.
    pub fn grid_step(&self) -> f64 {
        self.grid_step
    }

    /// The direct-path segment of link `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn link(&self, i: usize) -> Segment {
        self.links[i]
    }

    /// All links.
    pub fn links(&self) -> &[Segment] {
        &self.links
    }

    /// Centre coordinates of grid location `j` (0-based, row-major by
    /// link as in the paper's Fig. 3).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn location(&self, j: usize) -> Point {
        self.grid_centers[j]
    }

    /// All grid-location centres.
    pub fn locations(&self) -> &[Point] {
        &self.grid_centers
    }

    /// The link index that grid location `j` lies on (the paper's
    /// `ii = ceil(j / (N/M))`, 0-based here).
    pub fn link_of_location(&self, j: usize) -> usize {
        j / self.locations_per_link
    }

    /// The along-link cell index of grid location `j` (the paper's `u`,
    /// 0-based here).
    pub fn cell_of_location(&self, j: usize) -> usize {
        j % self.locations_per_link
    }

    /// The grid location index for link `i`, cell `u` — the inverse of
    /// [`Self::link_of_location`]/[`Self::cell_of_location`] and the
    /// paper's `j = (i-1) N/M + u` (Def. 2), 0-based.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `u` is out of range.
    pub fn location_index(&self, i: usize, u: usize) -> usize {
        assert!(i < self.num_links, "link {i} out of range");
        assert!(u < self.locations_per_link, "cell {u} out of range");
        i * self.locations_per_link + u
    }

    /// Euclidean distance in metres between two grid locations.
    pub fn distance_between(&self, j1: usize, j2: usize) -> f64 {
        self.grid_centers[j1].distance(self.grid_centers[j2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::Environment;

    fn office_deployment() -> Deployment {
        Deployment::new(&Environment::office())
    }

    #[test]
    fn counts_match_environment() {
        let d = office_deployment();
        assert_eq!(d.num_links(), 8);
        assert_eq!(d.locations_per_link(), 12);
        assert_eq!(d.num_locations(), 96);
    }

    #[test]
    fn links_parallel_and_evenly_spaced() {
        let d = office_deployment();
        let spacing = d.link(1).a.y - d.link(0).a.y;
        for i in 1..d.num_links() {
            let s = d.link(i).a.y - d.link(i - 1).a.y;
            assert!((s - spacing).abs() < 1e-12);
            assert_eq!(d.link(i).a.y, d.link(i).b.y, "links must be horizontal");
        }
    }

    #[test]
    fn grid_centers_on_their_link() {
        let d = office_deployment();
        for j in 0..d.num_locations() {
            let link = d.link(d.link_of_location(j));
            assert!(
                link.distance_to(d.location(j)) < 1e-9,
                "grid {j} must be centred on its link"
            );
        }
    }

    #[test]
    fn index_mapping_roundtrip() {
        let d = office_deployment();
        for j in 0..d.num_locations() {
            let i = d.link_of_location(j);
            let u = d.cell_of_location(j);
            assert_eq!(d.location_index(i, u), j);
        }
    }

    #[test]
    fn paper_def2_mapping() {
        // Def. 2: d_{i,u} = x_{i,j} with j = (i-1) * N/M + u (1-based).
        // 0-based: j = i * per + u.
        let d = office_deployment();
        assert_eq!(d.location_index(0, 0), 0);
        assert_eq!(d.location_index(1, 0), 12);
        assert_eq!(d.location_index(7, 11), 95);
    }

    #[test]
    fn neighbor_distance_equals_grid_step() {
        let d = office_deployment();
        let dist = d.distance_between(0, 1);
        assert!((dist - d.grid_step()).abs() < 1e-12);
        // Paper: 0.6 m between adjacent locations; office 9 m / 12 = 0.75.
        assert!((0.5..0.8).contains(&dist));
    }

    #[test]
    fn same_relative_location_aligned_across_links() {
        // Obs. 3 talks about "same relative locations" of adjacent links:
        // grid (i, u) and (i+1, u) share the same x coordinate.
        let d = office_deployment();
        for u in 0..d.locations_per_link() {
            let x0 = d.location(d.location_index(0, u)).x;
            for i in 1..d.num_links() {
                let xi = d.location(d.location_index(i, u)).x;
                assert!((x0 - xi).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn all_presets_build() {
        for env in Environment::all_presets() {
            let d = Deployment::new(&env);
            assert_eq!(d.num_locations(), env.num_locations());
        }
    }
}
