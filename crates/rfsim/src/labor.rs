//! The human-labor cost model of Sec. VI-C and Fig. 20.
//!
//! A surveyor walks between locations (Δt_m per hop) and collects RSS
//! samples at each location (Δt_c per sample). The paper's accounting:
//!
//! - traditional resurvey of `N` locations with `s` samples each costs
//!   `(N-1) Δt_m + s N Δt_c`;
//! - iUpdater resurvey of `n` reference locations with `s'` samples each
//!   costs `(n-1) Δt_m + s' n Δt_c`.
//!
//! With the paper's defaults (Δt_m = 5 s, Δt_c = 0.5 s, N = 94, n = 8,
//! s = 50, s' = 5) this yields 46.9 min vs 55 s — a 97.9 % saving, or
//! 92.1 % against a 5-sample traditional survey.

/// Labor cost model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaborModel {
    /// Average walking time between two survey locations, seconds.
    pub move_time_s: f64,
    /// RSS sample collection interval, seconds (a beacon interval).
    pub sample_time_s: f64,
}

impl Default for LaborModel {
    /// The paper's measured values: Δt_m = 5 s, Δt_c = 0.5 s.
    fn default() -> Self {
        LaborModel {
            move_time_s: 5.0,
            sample_time_s: 0.5,
        }
    }
}

impl LaborModel {
    /// Total survey time in seconds for `locations` spots with
    /// `samples_per_location` readings each.
    ///
    /// Returns 0 for zero locations.
    pub fn survey_time_s(&self, locations: usize, samples_per_location: usize) -> f64 {
        if locations == 0 {
            return 0.0;
        }
        (locations - 1) as f64 * self.move_time_s
            + (locations * samples_per_location) as f64 * self.sample_time_s
    }

    /// Survey time in hours (Fig. 20's y-axis).
    pub fn survey_time_hours(&self, locations: usize, samples_per_location: usize) -> f64 {
        self.survey_time_s(locations, samples_per_location) / 3600.0
    }

    /// Relative saving of survey `a` (locations, samples) versus survey
    /// `b`: `1 - cost(a)/cost(b)`.
    ///
    /// # Panics
    ///
    /// Panics if survey `b` has zero cost.
    pub fn saving(&self, a: (usize, usize), b: (usize, usize)) -> f64 {
        let cb = self.survey_time_s(b.0, b.1);
        assert!(cb > 0.0, "reference survey must have positive cost");
        1.0 - self.survey_time_s(a.0, a.1) / cb
    }
}

/// Scales a deployment to `k` times the paper's office edge length
/// (Fig. 20's x-axis): locations grow with area (`k²`), links with the
/// edge (`k`), and the per-survey reference count stays at the link count
/// (the fingerprint rank).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaScaling {
    /// Baseline location count (paper office: 94).
    pub base_locations: usize,
    /// Baseline link count (paper office: 8).
    pub base_links: usize,
}

impl Default for AreaScaling {
    fn default() -> Self {
        AreaScaling {
            base_locations: 94,
            base_links: 8,
        }
    }
}

impl AreaScaling {
    /// Location count at `k` times the edge length.
    pub fn locations_at(&self, k: usize) -> usize {
        self.base_locations * k * k
    }

    /// Link count (= iUpdater reference-location count) at `k` times the
    /// edge length.
    pub fn links_at(&self, k: usize) -> usize {
        self.base_links * k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_traditional_cost() {
        // 93 * 5 s + 50 * 0.5 s * 94 = 465 + 2350 = 2815 s = 46.9 min.
        let m = LaborModel::default();
        let t = m.survey_time_s(94, 50);
        assert!((t - 2815.0).abs() < 1e-9);
        assert!((t / 60.0 - 46.9).abs() < 0.05);
    }

    #[test]
    fn paper_iupdater_cost() {
        // 7 * 5 s + 5 * 0.5 s * 8 = 35 + 20 = 55 s.
        let m = LaborModel::default();
        assert!((m.survey_time_s(8, 5) - 55.0).abs() < 1e-9);
    }

    #[test]
    fn paper_savings() {
        let m = LaborModel::default();
        // 97.9 % vs the 50-sample traditional survey.
        let s50 = m.saving((8, 5), (94, 50));
        assert!((s50 - 0.979).abs() < 5e-3, "saving {s50}");
        // 92.1 % vs a 5-sample traditional survey.
        let s5 = m.saving((8, 5), (94, 5));
        assert!((s5 - 0.921).abs() < 5e-3, "saving {s5}");
    }

    #[test]
    fn zero_locations_cost_nothing() {
        let m = LaborModel::default();
        assert_eq!(m.survey_time_s(0, 50), 0.0);
        assert_eq!(m.survey_time_s(1, 0), 0.0);
    }

    #[test]
    fn scaling_growth_rates() {
        let s = AreaScaling::default();
        assert_eq!(s.locations_at(1), 94);
        assert_eq!(s.locations_at(2), 376);
        assert_eq!(s.links_at(2), 16);
        // iUpdater's advantage grows with area: saving at k=10 exceeds
        // saving at k=2.
        let m = LaborModel::default();
        let saving_at = |k: usize| m.saving((s.links_at(k), 5), (s.locations_at(k), 50));
        assert!(saving_at(10) > saving_at(2));
        assert!(saving_at(10) > 0.99);
    }

    #[test]
    fn hours_conversion() {
        let m = LaborModel::default();
        assert!((m.survey_time_hours(94, 50) - 2815.0 / 3600.0).abs() < 1e-12);
    }
}
