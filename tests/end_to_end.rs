//! End-to-end integration tests spanning all crates: the full
//! survey → update → localize loop on each environment, and the paper's
//! headline acceptance criteria.

use iupdater::baselines::rass::{default_rass_params, Rass};
use iupdater::core::metrics::{
    localization_error_m, mean_reconstruction_error, median_reconstruction_error,
};
use iupdater::core::prelude::*;
use iupdater::linalg::stats::{mean, median};
use iupdater::rfsim::labor::LaborModel;
use iupdater::rfsim::{Environment, Testbed};

const SEED: u64 = 20170605;

fn localization_errors(
    testbed: &Testbed,
    database: &FingerprintMatrix,
    day: f64,
    salt: u64,
) -> Vec<f64> {
    let localizer = Localizer::new(database.clone(), LocalizerConfig::default());
    let d = testbed.deployment();
    (0..d.num_locations())
        .step_by(2)
        .map(|j| {
            let y = testbed.online_measurement(j, day, salt + j as u64);
            localization_error_m(d, j, localizer.localize(&y).expect("localize").grid)
        })
        .collect()
}

#[test]
fn full_loop_works_in_every_environment() {
    for env in Environment::all_presets() {
        let kind = env.kind;
        let testbed = Testbed::new(env, SEED);
        let day0 = FingerprintMatrix::survey(&testbed, 0.0, 50);
        let updater = Updater::new(day0.clone(), UpdaterConfig::default()).expect("updater");

        // Few reference locations (rank == link count).
        assert!(
            updater.reference_locations().len() <= testbed.deployment().num_links(),
            "{kind}: reference count exceeds link count"
        );

        let fresh = updater
            .update_from_testbed(&testbed, 45.0, 5)
            .expect("update");
        let truth = testbed.expected_fingerprint_matrix(45.0);
        let err_fresh = mean_reconstruction_error(fresh.matrix(), &truth).unwrap();
        let err_stale = mean_reconstruction_error(day0.matrix(), &truth).unwrap();
        assert!(
            err_fresh < err_stale * 0.75,
            "{kind}: reconstruction ({err_fresh:.2} dB) must clearly beat stale ({err_stale:.2} dB)"
        );

        let loc_fresh = mean(&localization_errors(&testbed, &fresh, 45.0, 10_000));
        let loc_stale = mean(&localization_errors(&testbed, &day0, 45.0, 10_000));
        assert!(
            loc_fresh <= loc_stale,
            "{kind}: updated database must localize at least as well ({loc_fresh:.2} vs {loc_stale:.2} m)"
        );
    }
}

#[test]
fn headline_labor_saving_holds() {
    // Paper: 92.1 % saving vs a 5-sample traditional survey, 97.9 % vs
    // the 50-sample one.
    let labor = LaborModel::default();
    let iu = labor.survey_time_s(8, 5);
    assert!(1.0 - iu / labor.survey_time_s(94, 50) > 0.975);
    assert!(1.0 - iu / labor.survey_time_s(94, 5) > 0.92);
}

#[test]
fn reconstruction_median_errors_bounded_over_three_months() {
    // Fig. 18's shape: medians stay in the low single digits of dB
    // across the whole campaign.
    let testbed = Testbed::new(Environment::office(), SEED);
    let day0 = FingerprintMatrix::survey(&testbed, 0.0, 50);
    let updater = Updater::new(day0, UpdaterConfig::default()).unwrap();
    for day in [3.0, 5.0, 15.0, 45.0, 90.0] {
        let fresh = updater.update_from_testbed(&testbed, day, 5).unwrap();
        let truth = testbed.expected_fingerprint_matrix(day);
        let med = median_reconstruction_error(fresh.matrix(), &truth).unwrap();
        assert!(
            med < 5.0,
            "day {day}: median reconstruction error {med:.2} dB exceeds the paper-scale bound"
        );
    }
}

#[test]
fn iupdater_beats_rass_at_45_days() {
    // Fig. 23's ordering: iUpdater <= RASS w/ rec < RASS w/o rec.
    let testbed = Testbed::new(Environment::office(), SEED);
    let d = testbed.deployment();
    let day0 = FingerprintMatrix::survey(&testbed, 0.0, 50);
    let updater = Updater::new(day0.clone(), UpdaterConfig::default()).unwrap();
    let fresh = updater.update_from_testbed(&testbed, 45.0, 5).unwrap();

    let iu_errs = localization_errors(&testbed, &fresh, 45.0, 20_000);

    let rass_err = |db: &FingerprintMatrix| {
        let rass = Rass::train(db, d, default_rass_params());
        let errs: Vec<f64> = (0..d.num_locations())
            .step_by(2)
            .map(|j| {
                let y = testbed.online_measurement(j, 45.0, 20_000 + j as u64);
                rass.error_m(&y, d, j)
            })
            .collect();
        median(&errs)
    };
    let m_iu = median(&iu_errs);
    let m_rass_rec = rass_err(&fresh);
    let m_rass_stale = rass_err(&day0);
    assert!(
        m_iu <= m_rass_rec * 1.1,
        "iUpdater ({m_iu:.2} m) should lead RASS w/ rec ({m_rass_rec:.2} m)"
    );
    assert!(
        m_rass_rec < m_rass_stale,
        "reconstruction must help RASS ({m_rass_rec:.2} vs {m_rass_stale:.2} m)"
    );
}

#[test]
fn updater_is_reusable_across_updates() {
    // One updater instance serves the whole campaign (Z is learned once).
    let testbed = Testbed::new(Environment::library(), SEED);
    let day0 = FingerprintMatrix::survey(&testbed, 0.0, 50);
    let updater = Updater::new(day0, UpdaterConfig::default()).unwrap();
    let mut last_err = None;
    for day in [3.0, 45.0, 90.0] {
        let fresh = updater.update_from_testbed(&testbed, day, 5).unwrap();
        let truth = testbed.expected_fingerprint_matrix(day);
        let err = mean_reconstruction_error(fresh.matrix(), &truth).unwrap();
        assert!(err < 4.0, "day {day}: error {err:.2} dB");
        last_err = Some(err);
    }
    assert!(last_err.is_some());
}

#[test]
fn facade_reexports_compile_and_interoperate() {
    // Touch every re-exported crate through the facade paths.
    let m = iupdater::linalg::Matrix::identity(3);
    assert_eq!(m.rank(1e-9).unwrap(), 3);
    let env = iupdater::rfsim::Environment::hall();
    assert_eq!(env.num_locations(), 120);
    let cfg = iupdater::core::UpdaterConfig::default();
    assert!(cfg.validate().is_ok());
    let labor = iupdater::rfsim::labor::LaborModel::default();
    assert!(labor.survey_time_s(8, 5) > 0.0);
    let fig = iupdater::eval::table_labor::run();
    assert_eq!(fig.id, "table-labor");
}
