//! Failure-injection integration tests: corrupted reference
//! measurements, missing data, degenerate inputs and adversarial
//! conditions across the crate boundaries.

use iupdater::core::classify::CellClassification;
use iupdater::core::metrics::mean_reconstruction_error;
use iupdater::core::prelude::*;
use iupdater::linalg::Matrix;
use iupdater::rfsim::{Environment, Testbed};

const SEED: u64 = 7777;

fn setup() -> (Testbed, Updater) {
    let testbed = Testbed::new(Environment::office(), SEED);
    let day0 = FingerprintMatrix::survey(&testbed, 0.0, 50);
    let updater = Updater::new(day0, UpdaterConfig::default()).unwrap();
    (testbed, updater)
}

#[test]
fn corrupted_reference_column_degrades_gracefully() {
    let (testbed, updater) = setup();
    let day = 45.0;
    let refs = updater.reference_locations().to_vec();
    let mut x_r = testbed.measure_columns(&refs, day, 5);
    // One reference column is garbage (e.g. the surveyor stood in the
    // wrong place or the NIC glitched): +15 dB on every link.
    for i in 0..x_r.rows() {
        x_r[(i, 2)] += 15.0;
    }
    let b = CellClassification::from_testbed(&testbed).index_matrix();
    let x_b_full = testbed.fingerprint_matrix(day, 5);
    let x_b = b.hadamard(&x_b_full).unwrap();
    let rec = updater.update_with_mask(&x_r, &x_b, &b).unwrap();
    let truth = testbed.expected_fingerprint_matrix(day);
    let err = mean_reconstruction_error(rec.matrix(), &truth).unwrap();
    // Degraded but not catastrophic: still beats doing nothing.
    let stale = mean_reconstruction_error(updater.prior().matrix(), &truth).unwrap();
    assert!(
        err < stale * 1.5,
        "corrupted reference should degrade gracefully ({err:.2} vs stale {stale:.2} dB)"
    );
}

#[test]
fn missing_no_decrease_data_still_reconstructs() {
    // The free no-decrease collection fails entirely (empty mask): the
    // reconstruction must fall back on constraint 1 alone and stay sane.
    let (testbed, updater) = setup();
    let day = 15.0;
    let refs = updater.reference_locations().to_vec();
    let x_r = testbed.measure_columns(&refs, day, 5);
    let (m, n) = updater.prior().matrix().shape();
    let empty_b = Matrix::zeros(m, n);
    let empty_xb = Matrix::zeros(m, n);
    let rec = updater.update_with_mask(&x_r, &empty_xb, &empty_b).unwrap();
    let truth = testbed.expected_fingerprint_matrix(day);
    let err = mean_reconstruction_error(rec.matrix(), &truth).unwrap();
    assert!(err < 6.0, "no-mask reconstruction error {err:.2} dB");
}

#[test]
fn zero_samples_panics_cleanly() {
    let testbed = Testbed::new(Environment::hall(), SEED);
    let result = std::panic::catch_unwind(|| testbed.fingerprint_matrix(0.0, 0));
    assert!(
        result.is_err(),
        "zero-sample survey must panic with a clear message"
    );
}

#[test]
fn localizer_rejects_malformed_measurements() {
    let (testbed, updater) = setup();
    let fresh = updater.update_from_testbed(&testbed, 3.0, 5).unwrap();
    let localizer = Localizer::new(fresh, LocalizerConfig::default());
    assert!(localizer.localize(&[]).is_err());
    assert!(localizer.localize(&[0.0; 7]).is_err());
    assert!(localizer.localize(&[0.0; 9]).is_err());
}

#[test]
fn updater_rejects_mismatched_shapes() {
    let (testbed, updater) = setup();
    let day = 3.0;
    let refs = updater.reference_locations().to_vec();
    let x_r = testbed.measure_columns(&refs, day, 5);
    let b = CellClassification::from_testbed(&testbed).index_matrix();
    let x_b = b.hadamard(&testbed.fingerprint_matrix(day, 5)).unwrap();
    // Wrong reference count.
    let bad_xr = x_r.select_cols(&[0, 1]);
    assert!(updater.update_with_mask(&bad_xr, &x_b, &b).is_err());
    // Wrong X_B shape.
    let bad_xb = Matrix::zeros(8, 90);
    assert!(updater.update_with_mask(&x_r, &bad_xb, &b).is_err());
}

#[test]
fn extreme_online_measurements_do_not_crash() {
    let (testbed, updater) = setup();
    let fresh = updater.update_from_testbed(&testbed, 3.0, 5).unwrap();
    let localizer = Localizer::new(fresh, LocalizerConfig::default());
    for y in [
        vec![0.0; 8],
        vec![-200.0; 8],
        vec![f64::MIN_POSITIVE; 8],
        vec![-60.0, -61.0, -62.0, -63.0, -64.0, -65.0, -66.0, -67.0],
    ] {
        let est = localizer.localize(&y).unwrap();
        assert!(est.grid < testbed.deployment().num_locations());
    }
}

#[test]
fn heavily_noisy_update_day_still_converges() {
    // Update on a day where we inject extra burst noise into every
    // reference measurement: Algorithm 1 must still converge and return
    // a finite matrix.
    let (testbed, updater) = setup();
    let day = 45.0;
    let refs = updater.reference_locations().to_vec();
    let mut x_r = testbed.measure_columns(&refs, day, 1); // single noisy sample
    for v in x_r.iter_mut() {
        *v -= 2.0; // systematic interference during the survey
    }
    let b = CellClassification::from_testbed(&testbed).index_matrix();
    let x_b = b.hadamard(&testbed.fingerprint_matrix(day, 1)).unwrap();
    let rec = updater.update_with_mask(&x_r, &x_b, &b).unwrap();
    assert!(rec.matrix().iter().all(|v| v.is_finite()));
    let truth = testbed.expected_fingerprint_matrix(day);
    let err = mean_reconstruction_error(rec.matrix(), &truth).unwrap();
    assert!(err < 8.0, "noisy-day reconstruction error {err:.2} dB");
}

#[test]
fn gateway_killed_mid_cycle_restores_bit_identically_from_checkpoint() {
    // The PR-2 durability drill, replayed through the serving layer: a
    // gateway is killed while an update cycle is in flight, restored
    // from its last checkpoint, and must thereafter serve queries
    // bit-identically to an uninterrupted control gateway.
    use iupdater::core::persist::{read_service, write_service};

    fn build() -> UpdateService {
        let mut service = UpdateService::new();
        let testbed = Testbed::new(Environment::office(), SEED);
        service
            .register("office", testbed, UpdaterConfig::default(), 3)
            .unwrap();
        service
    }

    // Control: uninterrupted cycles on days 5 and 15.
    let control = FleetGateway::launch(build()).unwrap();
    let cid = control.ids()[0];
    control.run_cycle(5.0, 2).unwrap();
    control.run_cycle(15.0, 2).unwrap();

    // Victim: cycle 5, checkpoint, then killed mid-cycle on day 15 —
    // the gateway is dropped with the ticket still unresolved, which
    // closes the command channel out from under the drive loop.
    let victim = FleetGateway::launch(build()).unwrap();
    victim.run_cycle(5.0, 2).unwrap();
    let mut checkpoint = Vec::new();
    write_service(&victim.snapshot().unwrap(), &mut checkpoint).unwrap();
    let ticket = victim.begin_cycle(15.0, 2).unwrap();
    drop(victim);
    // Whatever the in-flight cycle reports (completion or a dead
    // gateway), the checkpoint predates it and is all that survives.
    let _ = ticket.wait();

    // Restore from the last checkpoint and replay the lost day.
    let snapshot = read_service(&checkpoint[..]).unwrap();
    let restored = FleetGateway::restore(&snapshot).unwrap();
    let rid = restored.ids()[0];
    restored.run_cycle(15.0, 2).unwrap();

    // Published snapshots now serve bit-identically to the control.
    let a = restored.published(rid).unwrap();
    let b = control.published(cid).unwrap();
    assert_eq!(a.cycles_run(), b.cycles_run());
    assert_eq!(a.last_update_day(), b.last_update_day());
    assert!(
        a.fingerprint()
            .matrix()
            .approx_eq(b.fingerprint().matrix(), 0.0),
        "restored database must be bit-identical to the control"
    );
    let testbed = Testbed::new(Environment::office(), SEED);
    let n = testbed.deployment().num_locations();
    for q in 0..12u64 {
        let y = testbed.online_measurement(q as usize % n, 15.0, SEED + q);
        let ea = a.localize(&y).unwrap();
        let eb = b.localize(&y).unwrap();
        assert_eq!(ea, eb);
        assert_eq!(ea.residual_sq.to_bits(), eb.residual_sq.to_bits());
    }
    restored.shutdown().unwrap();
    control.shutdown().unwrap();
}

#[test]
fn single_sample_updates_remain_useful() {
    // The paper collects 5 samples; even 1 sample per reference cell
    // should beat the stale matrix (differences do the stabilising).
    let (testbed, updater) = setup();
    let day = 45.0;
    let rec = updater.update_from_testbed(&testbed, day, 1).unwrap();
    let truth = testbed.expected_fingerprint_matrix(day);
    let err = mean_reconstruction_error(rec.matrix(), &truth).unwrap();
    let stale = mean_reconstruction_error(updater.prior().matrix(), &truth).unwrap();
    assert!(
        err < stale,
        "1-sample update ({err:.2} dB) should still beat stale ({stale:.2} dB)"
    );
}
