//! Cross-crate property-based tests: invariants of the full pipeline
//! under randomised environments, seeds and update days.

use iupdater::core::metrics::mean_reconstruction_error;
use iupdater::core::prelude::*;
use iupdater::linalg::Matrix;
use iupdater::rfsim::{Environment, Testbed};
use proptest::prelude::*;

fn any_environment() -> impl Strategy<Value = Environment> {
    prop_oneof![
        Just(Environment::office()),
        Just(Environment::library()),
        Just(Environment::hall()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case builds a full testbed; keep the budget sane
        ..ProptestConfig::default()
    })]

    #[test]
    fn fingerprints_are_plausible_dbm(env in any_environment(), seed in 0u64..1000) {
        let t = Testbed::new(env, seed);
        let fp = t.fingerprint_matrix(0.0, 3);
        for &v in fp.iter() {
            prop_assert!((-110.0..-20.0).contains(&v), "implausible RSS {v}");
        }
    }

    #[test]
    fn mic_reference_count_never_exceeds_links(env in any_environment(), seed in 0u64..1000) {
        let t = Testbed::new(env.clone(), seed);
        let day0 = FingerprintMatrix::survey(&t, 0.0, 10);
        let updater = Updater::new(day0, UpdaterConfig::default()).unwrap();
        prop_assert!(updater.reference_locations().len() <= env.num_links);
        prop_assert!(!updater.reference_locations().is_empty());
        // All reference locations are valid grid indices.
        for &j in updater.reference_locations() {
            prop_assert!(j < env.num_locations());
        }
    }

    #[test]
    fn reconstruction_is_finite_and_rank_bounded(seed in 0u64..1000, day in 1.0f64..90.0) {
        let t = Testbed::new(Environment::office(), seed);
        let day0 = FingerprintMatrix::survey(&t, 0.0, 10);
        let updater = Updater::new(day0, UpdaterConfig::default()).unwrap();
        let rec = updater.update_from_testbed(&t, day, 3).unwrap();
        for &v in rec.matrix().iter() {
            prop_assert!(v.is_finite());
        }
        prop_assert!(rec.matrix().rank(1e-9).unwrap() <= 8);
    }

    #[test]
    fn update_never_much_worse_than_stale(seed in 0u64..200, day in 10.0f64..90.0) {
        let t = Testbed::new(Environment::office(), seed);
        let day0 = FingerprintMatrix::survey(&t, 0.0, 20);
        let updater = Updater::new(day0.clone(), UpdaterConfig::default()).unwrap();
        let rec = updater.update_from_testbed(&t, day, 5).unwrap();
        let truth = t.expected_fingerprint_matrix(day);
        let err_rec = mean_reconstruction_error(rec.matrix(), &truth).unwrap();
        let err_stale = mean_reconstruction_error(day0.matrix(), &truth).unwrap();
        // Robustness invariant: the update never costs accuracy.
        prop_assert!(
            err_rec <= err_stale + 0.5,
            "update ({err_rec:.2} dB) should never be much worse than stale ({err_stale:.2} dB)"
        );
    }

    #[test]
    fn localization_estimates_always_in_range(seed in 0u64..1000, cell_frac in 0.0f64..1.0) {
        let t = Testbed::new(Environment::hall(), seed);
        let n = t.deployment().num_locations();
        let day0 = FingerprintMatrix::survey(&t, 0.0, 5);
        let localizer = Localizer::new(day0, LocalizerConfig::default());
        let j = ((cell_frac * n as f64) as usize).min(n - 1);
        let y = t.online_measurement(j, 0.0, seed);
        let est = localizer.localize(&y).unwrap();
        prop_assert!(est.grid < n);
        prop_assert!(est.residual_sq >= 0.0);
    }

    #[test]
    fn index_matrix_binary_and_majority_free(env in any_environment(), seed in 0u64..1000) {
        let t = Testbed::new(env, seed);
        let b = iupdater::core::classify::index_matrix(&t);
        let mut free = 0usize;
        for &v in b.iter() {
            prop_assert!(v == 0.0 || v == 1.0);
            free += (v == 1.0) as usize;
        }
        let frac = free as f64 / (b.rows() * b.cols()) as f64;
        prop_assert!(frac > 0.4, "free fraction {frac}");
    }
}

#[test]
fn survey_determinism_across_equal_testbeds() {
    let a = Testbed::new(Environment::library(), 5);
    let b = Testbed::new(Environment::library(), 5);
    assert_eq!(a.fingerprint_matrix(12.0, 4), b.fingerprint_matrix(12.0, 4));
}

#[test]
fn masked_cells_equal_survey_on_known_entries() {
    let t = Testbed::new(Environment::office(), 9);
    let b = iupdater::core::classify::index_matrix(&t);
    let full = t.fingerprint_matrix(0.0, 3);
    let masked = b.hadamard(&full).unwrap();
    for i in 0..b.rows() {
        for j in 0..b.cols() {
            let expect = if b[(i, j)] == 1.0 { full[(i, j)] } else { 0.0 };
            assert_eq!(masked[(i, j)], expect);
        }
    }
    // And the masked matrix is what update consumes without error.
    let day0 = FingerprintMatrix::survey(&t, 0.0, 10);
    let updater = Updater::new(day0, UpdaterConfig::default()).unwrap();
    let x_r = t.measure_columns(updater.reference_locations(), 0.0, 3);
    assert!(updater.update_with_mask(&x_r, &masked, &b).is_ok());
    let _ = Matrix::zeros(1, 1);
}
